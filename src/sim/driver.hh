/**
 * @file
 * Evaluation driver: runs a scheduler against a colocation.
 *
 * Implements the per-timeslice loop of Fig 3: set the offered load
 * and power budget from their traces, run the profiling pass if the
 * scheduler wants one, obtain the decision, execute the slice, and
 * record everything the figures need (instructions, tail latency,
 * power, chosen configurations).
 */

#ifndef CUTTLESYS_SIM_DRIVER_HH
#define CUTTLESYS_SIM_DRIVER_HH

#include <cstddef>
#include <vector>

#include "check/schedule_validator.hh"
#include "lcsim/load_pattern.hh"
#include "sim/multicore.hh"
#include "sim/scheduler.hh"
#include "telemetry/quantum_trace.hh"

namespace cuttlesys {

/** Driver configuration for one run. */
struct DriverOptions
{
    double durationSec = 1.0;   //!< total simulated time
    LoadPattern loadPattern = LoadPattern::constant(0.8);
    /** Power budget trace, as a fraction of maxPowerW. */
    LoadPattern powerPattern = LoadPattern::constant(0.7);
    double maxPowerW = 0.0;     //!< reference max power (Section VII-A)

    /**
     * LC core count used for the first slice's profiling pass, before
     * any decision exists. 0 means "derive from the machine": half the
     * cores, at least one.
     */
    std::size_t initialLcCores = 0;

    /**
     * Optional per-quantum trace sink. When set, the driver attaches a
     * telemetry::QuantumTrace to the scheduler and emits one
     * QuantumRecord per timeslice; when null, tracing stays off and
     * the hot path never touches a clock.
     */
    telemetry::TraceSink *traceSink = nullptr;

    /**
     * Zero-config decision oracle: audit every decision against the
     * machine invariants (grid membership, LLC way budget, power-cap
     * claim, core accounting, gated-release). On by default so every
     * test and CI colocation run — baselines included — fails loudly
     * on an infeasible schedule.
     */
    bool validateDecisions = true;

    /** What a failed invariant does (default: fail the run). */
    check::FailMode validatorFailMode = check::FailMode::Panic;

    /**
     * External validator to use instead of the driver's own. Lets a
     * caller aggregate audits across runs or pick non-default
     * tolerances; overrides validateDecisions/validatorFailMode.
     */
    check::ScheduleValidator *validator = nullptr;
};

/** Everything recorded about one executed timeslice. */
struct SliceRecord
{
    SliceDecision decision;
    SliceMeasurement measurement;
    double loadFraction = 0.0;
    double powerBudgetW = 0.0;
    bool qosViolated = false;
};

/** Aggregate outcome of a run. */
struct RunResult
{
    std::vector<SliceRecord> slices;
    double totalBatchInstructions = 0.0;
    std::size_t qosViolations = 0;   //!< slices with p99 > QoS
    std::size_t powerViolations = 0; //!< slices with power > budget
    double meanPowerW = 0.0;

    /** Mean over slices of the geometric-mean batch BIPS. */
    double meanGmeanBips = 0.0;

    /** Per-quantum telemetry aggregate (empty when tracing is off). */
    telemetry::RunSummary traceSummary;

    /**
     * Schedule-invariant violations found by the decision oracle
     * (always 0 under the default panic fail mode, which throws
     * instead; meaningful with FailMode::Record / Log).
     */
    std::size_t invariantViolations = 0;
};

/**
 * Run @p scheduler on @p sim for the configured duration.
 * The simulator should be freshly constructed (time 0).
 */
RunResult runColocation(MulticoreSim &sim, Scheduler &scheduler,
                        const DriverOptions &opts);

/**
 * Geometric-mean batch throughput of one measurement, with gated jobs
 * floored at @p floor_bips so the gmean stays defined (the paper
 * switches to instruction totals for cross-scheme comparison for
 * exactly this reason).
 */
double gmeanBatchBips(const SliceMeasurement &m,
                      double floor_bips = 1e-3);

} // namespace cuttlesys

#endif // CUTTLESYS_SIM_DRIVER_HH
