/**
 * @file
 * Evaluation driver: runs a scheduler against a colocation.
 *
 * Implements the per-timeslice loop of Fig 3: set the offered load
 * and power budget from their traces, run the profiling pass if the
 * scheduler wants one, obtain the decision, execute the slice, and
 * record everything the figures need (instructions, tail latency,
 * power, chosen configurations).
 *
 * Two entry points share one implementation: runColocation() drives a
 * whole run in a loop, while ColocationRun exposes the same loop one
 * step() at a time so an outer controller — the fleet simulator —
 * can interleave many nodes, override each quantum's load and budget,
 * and inject batch-job churn between quanta. The stepper keeps every
 * per-quantum buffer persistent, so a steady-state step() performs
 * zero heap allocations (with tracing off and slice records not
 * kept), preserving PR 4's zero-alloc contract per fleet node.
 */

#ifndef CUTTLESYS_SIM_DRIVER_HH
#define CUTTLESYS_SIM_DRIVER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "check/schedule_validator.hh"
#include "lcsim/load_pattern.hh"
#include "sim/multicore.hh"
#include "sim/scheduler.hh"
#include "telemetry/quantum_trace.hh"

namespace cuttlesys {

/**
 * One batch-slot churn event, applied at the head of a quantum
 * (before the profiling pass, so an arriving job's first samples are
 * its own). A departure without an arrival vacates the slot; an
 * arrival installs @ref profile (replacing any sitting tenant).
 * Either way the scheduler's onJobChurn() fires for the slot, which
 * is what flows into CfEngine::clearJob and invalidates the row's
 * reconstruction history and cached SGD warm-start factors.
 */
struct JobEvent
{
    std::size_t slot = 0;
    bool departure = false;
    std::optional<AppProfile> arrival;
    /** Tenant identity of the arriving job (stamped into the quantum
     *  records' per-slot account map); ignored for pure departures. */
    std::int32_t account = 0;
    /** True when this event evicts a sitting tenant on behalf of a
     *  higher-class arrival (departure + arrival on one occupied
     *  slot). Counted in RunResult::jobPreemptions and the victim's
     *  account lands in the quantum record. The churn seam is
     *  otherwise identical: onJobChurn() fires and the slot's learned
     *  CF state drops, so the preemptor never inherits the victim's
     *  observations. */
    bool preemption = false;

    // --- DAG workflow identity (fleet controller side; the defaults
    // --- mark a plain non-DAG job and change nothing) ----------------
    /** Workflow instance the arriving/departing task belongs to;
     *  -1 for plain churned jobs. */
    std::int64_t workflowId = -1;
    /** Task index within that workflow; -1 for plain jobs. */
    std::int32_t workflowTask = -1;
    /** Input artifacts the placement found resident / had to pull in
     *  (arrivals only; stamped into the quantum record). */
    std::uint32_t artifactHits = 0;
    std::uint32_t artifactMisses = 0;
    /** Modeled bytes transferred for the misses. */
    double transferBytes = 0.0;
    /** On the departure that finishes a workflow: its submit->finish
     *  makespan in cluster quanta; -1 otherwise. */
    std::int64_t workflowMakespan = -1;
};

/**
 * Optional per-quantum churn source. Called at the head of every
 * quantum with the slice index; fills @p out (handed over cleared,
 * capacity reused across quanta) with this quantum's events.
 */
using JobEventHook =
    std::function<void(std::size_t slice, std::vector<JobEvent> &out)>;

/** Driver configuration for one run. */
struct DriverOptions
{
    double durationSec = 1.0;   //!< total simulated time
    LoadPattern loadPattern = LoadPattern::constant(0.8);
    /** Power budget trace, as a fraction of maxPowerW. */
    LoadPattern powerPattern = LoadPattern::constant(0.7);
    double maxPowerW = 0.0;     //!< reference max power (Section VII-A)

    /**
     * LC core count used for the first slice's profiling pass, before
     * any decision exists. 0 means "derive from the machine": half the
     * cores, at least one.
     */
    std::size_t initialLcCores = 0;

    /**
     * Optional per-quantum trace sink. When set, the driver attaches a
     * telemetry::QuantumTrace to the scheduler and emits one
     * QuantumRecord per timeslice; when null, tracing stays off and
     * the hot path never touches a clock.
     */
    telemetry::TraceSink *traceSink = nullptr;

    /**
     * Zero-config decision oracle: audit every decision against the
     * machine invariants (grid membership, LLC way budget, power-cap
     * claim, core accounting, gated-release). On by default so every
     * test and CI colocation run — baselines included — fails loudly
     * on an infeasible schedule.
     */
    bool validateDecisions = true;

    /** What a failed invariant does (default: fail the run). */
    check::FailMode validatorFailMode = check::FailMode::Panic;

    /**
     * External validator to use instead of the driver's own. Lets a
     * caller aggregate audits across runs or pick non-default
     * tolerances; overrides validateDecisions/validatorFailMode.
     */
    check::ScheduleValidator *validator = nullptr;

    /**
     * Keep the per-slice SliceRecord list in RunResult::slices. Fleet
     * nodes turn this off: the aggregates still accumulate, but the
     * steady-state quantum stays allocation-free.
     */
    bool keepSliceRecords = true;

    /**
     * Stamped into every emitted QuantumRecord's node field so a
     * fleet-wide trace can interleave records from many nodes and
     * still be split back apart. 0 for single-node runs.
     */
    std::size_t nodeIndex = 0;

    /** Per-quantum batch-job churn source (empty = static mix). */
    JobEventHook jobEventHook;
};

/** Everything recorded about one executed timeslice. */
struct SliceRecord
{
    SliceDecision decision;
    SliceMeasurement measurement;
    double loadFraction = 0.0;
    double powerBudgetW = 0.0;
    bool qosViolated = false;
};

/** Aggregate outcome of a run. */
struct RunResult
{
    std::vector<SliceRecord> slices;
    double totalBatchInstructions = 0.0;
    std::size_t qosViolations = 0;   //!< slices with p99 > QoS
    std::size_t powerViolations = 0; //!< slices with power > budget
    double meanPowerW = 0.0;

    /** Mean over slices of the geometric-mean batch BIPS. */
    double meanGmeanBips = 0.0;

    /** Per-quantum telemetry aggregate (empty when tracing is off). */
    telemetry::RunSummary traceSummary;

    /**
     * Schedule-invariant violations found by the decision oracle
     * (always 0 under the default panic fail mode, which throws
     * instead; meaningful with FailMode::Record / Log).
     */
    std::size_t invariantViolations = 0;

    /** Batch-job churn applied during the run. */
    std::size_t jobArrivals = 0;
    std::size_t jobDepartures = 0;
    /** Evictions on behalf of a higher-class arrival (a subset of
     *  both arrivals and departures: one preemption event counts as
     *  one of each). */
    std::size_t jobPreemptions = 0;
};

/**
 * The per-timeslice loop as a stepper object.
 *
 * Construction attaches the trace/validator to the scheduler
 * (detached again on destruction, exception-safe); each step() runs
 * one full decision quantum. Between steps a controller may override
 * the next quantum's load fraction and power budget (the fleet's
 * global power manager does both) and queue JobEvents. All
 * per-quantum state — profiling buffers, the decision, the
 * measurement, the previous slice's copies — lives in persistent
 * members, so steady-state steps are heap-free when tracing is off
 * and keepSliceRecords is false.
 */
class ColocationRun
{
  public:
    ColocationRun(MulticoreSim &sim, Scheduler &scheduler,
                  const DriverOptions &opts);
    ~ColocationRun();

    ColocationRun(const ColocationRun &) = delete;
    ColocationRun &operator=(const ColocationRun &) = delete;

    /** Quanta in the configured duration. */
    std::size_t numSlices() const { return numSlices_; }

    /** Index of the quantum the next step() will run. */
    std::size_t nextSlice() const { return slice_; }

    /** Whether the configured duration has fully run. */
    bool done() const { return slice_ >= numSlices_; }

    /**
     * Replace the load-pattern value for the next step() only (a
     * cluster controller shifting LC load between replicas).
     */
    void overrideLoadFraction(double fraction);

    /**
     * Replace the power-pattern budget (absolute watts) for the next
     * step() only (the global power manager's per-quantum split).
     */
    void overridePowerBudgetW(double watts);

    /** Queue a churn event for the head of the next step(). */
    void queueJobEvent(const JobEvent &event);

    /**
     * Stamp the account of a slot's *initial* occupant (the
     * construction-time mix). Later occupants carry their account on
     * their JobEvent; this seam exists because the initial mix never
     * arrives through an event.
     */
    void setSlotAccount(std::size_t slot, std::int32_t account);

    /** Per-slot account map (-1 = vacant), as of the last step(). */
    const std::vector<std::int32_t> &slotAccounts() const
    {
        return slotAccounts_;
    }

    /** Run one decision quantum. @pre !done() */
    void step();

    /** Last executed quantum's observables. @pre one step() ran. */
    const SliceMeasurement &lastMeasurement() const
    {
        return prevMeasurement_;
    }
    const SliceDecision &lastDecision() const { return prevDecision_; }
    double lastLoadFraction() const { return lastLoadFraction_; }
    double lastPowerBudgetW() const { return lastBudgetW_; }
    bool lastQosViolated() const { return lastQosViolated_; }
    double lastGmeanBips() const { return lastGmeanBips_; }

    /** Aggregates over the steps run so far (means up to date). */
    const RunResult &result();

    /** Move the aggregates out (the run must not step() afterwards). */
    RunResult takeResult();

  private:
    void applyJobEvents();

    MulticoreSim &sim_;
    Scheduler &scheduler_;
    DriverOptions opts_;

    std::size_t numSlices_ = 0;
    std::size_t slice_ = 0;
    std::size_t initialLcCores_ = 0;
    bool tracing_ = false;

    telemetry::QuantumTrace trace_;
    check::ScheduleValidator ownValidator_;
    check::ScheduleValidator *validator_ = nullptr;
    std::size_t violationsBefore_ = 0;

    // Persistent per-quantum buffers (capacity reused every step).
    SliceContext ctx_;
    SliceDecision decision_;
    SliceMeasurement measurement_;
    SliceDecision prevDecision_;
    SliceMeasurement prevMeasurement_;
    bool havePrev_ = false;
    std::vector<JobEvent> pendingEvents_;
    std::vector<JobEvent> hookEvents_;
    /** Per-slot tenant identity (-1 = vacant); initial occupants
     *  default to account 0 until setSlotAccount() says otherwise. */
    std::vector<std::int32_t> slotAccounts_;
    /** Victim accounts of this quantum's preemptions (trace only). */
    std::vector<std::int32_t> preemptedScratch_;
    /** Per-slot DAG identity (-1 = not a DAG task) and this quantum's
     *  cache/completion telemetry; all stay at their defaults — and
     *  out of the trace — until a DAG-stamped JobEvent arrives. */
    std::vector<std::int64_t> slotWorkflows_;
    std::vector<std::int32_t> slotDagTasks_;
    bool dagSeen_ = false;
    std::size_t dagHits_ = 0;
    std::size_t dagMisses_ = 0;
    double dagTransferBytes_ = 0.0;
    std::vector<std::int64_t> completedWorkflows_;
    std::vector<std::int32_t> completedAccounts_;
    std::vector<std::int64_t> completedMakespans_;

    double lastLoadFraction_ = 0.0;
    double lastBudgetW_ = 0.0;
    bool lastQosViolated_ = false;
    double lastGmeanBips_ = 0.0;
    std::optional<double> loadOverride_;
    std::optional<double> budgetOverride_;

    double gmeanSum_ = 0.0;
    double powerSum_ = 0.0;
    RunResult result_;
};

/**
 * Run @p scheduler on @p sim for the configured duration.
 * The simulator should be freshly constructed (time 0).
 */
RunResult runColocation(MulticoreSim &sim, Scheduler &scheduler,
                        const DriverOptions &opts);

/**
 * Geometric-mean batch throughput of one measurement, with gated jobs
 * floored at @p floor_bips so the gmean stays defined (the paper
 * switches to instruction totals for cross-scheme comparison for
 * exactly this reason).
 */
double gmeanBatchBips(const SliceMeasurement &m,
                      double floor_bips = 1e-3);

} // namespace cuttlesys

#endif // CUTTLESYS_SIM_DRIVER_HH
