/**
 * @file
 * Ground-truth characterization tables.
 *
 * Three consumers need the *true* behavior of an application across
 * all 108 joint configurations:
 *  - the offline training step (the 16 "known" apps are characterized
 *    once across every configuration — Section V),
 *  - the oracle-like asymmetric-multicore baseline (Section VII-C),
 *  - the accuracy studies of Figs 5 and 9, which compare predictions
 *    against measured values.
 *
 * Batch truth is analytic (the core model in isolation); LC tail
 * truth is *measured* by running the discrete-event queue per
 * configuration, exactly as the paper measures tail latency by
 * simulation rather than computing it.
 */

#ifndef CUTTLESYS_SIM_GROUND_TRUTH_HH
#define CUTTLESYS_SIM_GROUND_TRUTH_HH

#include <cstdint>
#include <vector>

#include "apps/app_profile.hh"
#include "common/matrix.hh"
#include "config/job_config.hh"
#include "config/params.hh"

namespace cuttlesys {

/** Full app x joint-config tables for a set of batch apps. */
struct BatchTruth
{
    Matrix bips;   //!< apps x kNumJobConfigs
    Matrix power;  //!< apps x kNumJobConfigs
};

/**
 * Characterize @p apps across all joint configurations in isolation.
 * @param noise optional multiplicative measurement noise (stddev);
 *        0 gives exact model output.
 */
BatchTruth batchTruthTables(const std::vector<AppProfile> &apps,
                            const SystemParams &params,
                            bool reconfigurable = true,
                            double noise = 0.0,
                            std::uint64_t seed = 11);

/** Options for measured LC curves. */
struct LcCurveOptions
{
    std::size_t servers = 16;
    double warmupSec = 0.3;
    double measureSec = 1.0;
    std::uint64_t seed = 17;
    bool reconfigurable = true;
};

/**
 * Measured p99 (seconds) of @p app at @p qps for every joint
 * configuration, in isolation. Entry order is JobConfig::index().
 */
std::vector<double> lcTailCurve(const AppProfile &app, double qps,
                                const SystemParams &params,
                                const LcCurveOptions &opts = {});

/**
 * Per-core power (W) of the LC service at @p qps for every joint
 * configuration, using the analytic utilization estimate
 * min(1, qps * work / (servers * ips)).
 */
std::vector<double> lcPowerCurve(const AppProfile &app, double qps,
                                 const SystemParams &params,
                                 const LcCurveOptions &opts = {});

/**
 * Training table for the tail-latency matrix: one row per (LC app,
 * load fraction) pair, columns = joint configurations. Apps must be
 * calibrated (maxQps > 0).
 */
Matrix lcTailTrainingTable(const std::vector<AppProfile> &apps,
                           const std::vector<double> &load_fractions,
                           const SystemParams &params,
                           const LcCurveOptions &opts = {});

} // namespace cuttlesys

#endif // CUTTLESYS_SIM_GROUND_TRUTH_HH
