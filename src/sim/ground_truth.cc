#include "sim/ground_truth.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"
#include "lcsim/queue_sim.hh"
#include "power/power_model.hh"
#include "model/core_model.hh"

namespace cuttlesys {

BatchTruth
batchTruthTables(const std::vector<AppProfile> &apps,
                 const SystemParams &params, bool reconfigurable,
                 double noise, std::uint64_t seed)
{
    BatchTruth truth;
    truth.bips = Matrix(apps.size(), kNumJobConfigs);
    truth.power = Matrix(apps.size(), kNumJobConfigs);
    Rng rng(seed);

    for (std::size_t a = 0; a < apps.size(); ++a) {
        for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
            const JobConfig config = JobConfig::fromIndex(c);
            const double ipc = coreIpc(apps[a], config, params);
            const double bips =
                ipc * coreFrequencyGHz(params, reconfigurable);
            const double power = corePower(apps[a], config.core(), ipc,
                                           params, reconfigurable);
            const double nb =
                noise > 0.0 ? 1.0 + rng.normal(0.0, noise) : 1.0;
            const double np =
                noise > 0.0 ? 1.0 + rng.normal(0.0, noise) : 1.0;
            truth.bips(a, c) = bips * nb;
            truth.power(a, c) = power * np;
        }
    }
    return truth;
}

std::vector<double>
lcTailCurve(const AppProfile &app, double qps,
            const SystemParams &params, const LcCurveOptions &opts)
{
    CS_ASSERT(app.isLatencyCritical(), "lcTailCurve needs an LC app");
    std::vector<double> curve(kNumJobConfigs, 0.0);
    for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
        const JobConfig config = JobConfig::fromIndex(c);
        const double ips = coreIps(app, config, params, 1.0,
                                   opts.reconfigurable);
        LcQueueSim sim(app, opts.servers, ips, opts.seed + c);
        sim.setLoadQps(qps);
        sim.run(opts.warmupSec);
        sim.clearWindow();
        sim.run(opts.measureSec);
        // An empty window means the system is so saturated nothing
        // completed; report the whole backlog age as the tail.
        curve[c] = sim.completedInWindow() > 0
            ? sim.tailLatency(99.0)
            : opts.warmupSec + opts.measureSec;
    }
    return curve;
}

std::vector<double>
lcPowerCurve(const AppProfile &app, double qps,
             const SystemParams &params, const LcCurveOptions &opts)
{
    CS_ASSERT(app.isLatencyCritical(), "lcPowerCurve needs an LC app");
    std::vector<double> curve(kNumJobConfigs, 0.0);
    for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
        const JobConfig config = JobConfig::fromIndex(c);
        const double ips = coreIps(app, config, params, 1.0,
                                   opts.reconfigurable);
        const double util = std::min(
            1.0, qps * app.requestInstructions() /
                 (static_cast<double>(opts.servers) * ips));
        const double ipc = coreIpc(app, config, params);
        curve[c] = corePower(app, config.core(), ipc * util, params,
                             opts.reconfigurable);
    }
    return curve;
}

Matrix
lcTailTrainingTable(const std::vector<AppProfile> &apps,
                    const std::vector<double> &load_fractions,
                    const SystemParams &params,
                    const LcCurveOptions &opts)
{
    Matrix table(apps.size() * load_fractions.size(), kNumJobConfigs);
    std::size_t row = 0;
    for (const auto &app : apps) {
        CS_ASSERT(app.maxQps > 0.0, app.name,
                  " is not calibrated; run calibrateMaxQps first");
        for (double fraction : load_fractions) {
            const auto curve =
                lcTailCurve(app, fraction * app.maxQps, params, opts);
            for (std::size_t c = 0; c < kNumJobConfigs; ++c)
                table(row, c) = curve[c];
            ++row;
        }
    }
    return table;
}

} // namespace cuttlesys
