#include "sim/multicore.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "power/power_model.hh"
#include "model/core_model.hh"

namespace cuttlesys {

namespace {

/** Cache rank for a 1.0-way allocation (profiling uses 1 way/core). */
std::size_t
oneWayRank()
{
    for (std::size_t i = 0; i < kNumCacheAllocs; ++i) {
        if (kCacheAllocWays[i] == 1.0)
            return i;
    }
    panic("no 1-way cache allocation in kCacheAllocWays");
}

} // namespace

MulticoreSim::MulticoreSim(SystemParams params, WorkloadMix mix,
                           std::uint64_t seed)
    : params_(std::move(params)), mix_(std::move(mix)), rng_(seed),
      churnRng_(seed ^ 0x9e3779b97f4a7c15ULL)
{
    CS_ASSERT(mix_.lc.isLatencyCritical(),
              "mix must lead with a latency-critical app");
    CS_ASSERT(!mix_.batch.empty(), "mix has no batch jobs");
    CS_ASSERT(mix_.batch.size() < params_.numCores,
              "more batch jobs than cores");

    const JobConfig widest(CoreConfig::widest(), kNumCacheAllocs - 1);
    const double ips = coreIps(mix_.lc, widest, params_);
    lcSim_ = std::make_unique<LcQueueSim>(mix_.lc, 16, ips, rng_());

    phaseOffsets_.resize(1 + mix_.batch.size());
    for (auto &offset : phaseOffsets_)
        offset = rng_.uniform(0.0, 2.0 * M_PI);
    phaseDriftAmplitude_ = kPhaseDriftAmplitude;
    phaseDriftPeriodSec_ = kPhaseDriftPeriodSec;

    batchInstr_.assign(mix_.batch.size(), 0.0);
    slotOccupied_.assign(mix_.batch.size(), true);
}

void
MulticoreSim::setBatchSlotOccupied(std::size_t slot, bool occupied)
{
    CS_ASSERT(slot < mix_.batch.size(), "batch slot out of range");
    slotOccupied_[slot] = occupied;
}

bool
MulticoreSim::batchSlotOccupied(std::size_t slot) const
{
    CS_ASSERT(slot < mix_.batch.size(), "batch slot out of range");
    return slotOccupied_[slot];
}

std::size_t
MulticoreSim::occupiedBatchSlots() const
{
    std::size_t n = 0;
    for (bool occupied : slotOccupied_)
        n += occupied ? 1 : 0;
    return n;
}

void
MulticoreSim::replaceBatchJob(std::size_t slot,
                              const AppProfile &profile)
{
    CS_ASSERT(slot < mix_.batch.size(), "batch slot out of range");
    CS_ASSERT(!profile.isLatencyCritical(),
              "batch slot needs a batch profile");
    mix_.batch[slot] = profile;
    phaseOffsets_[1 + slot] = churnRng_.uniform(0.0, 2.0 * M_PI);
    batchInstr_[slot] = 0.0;
    slotOccupied_[slot] = true;
}

void
MulticoreSim::setLcLoadQps(double qps)
{
    CS_ASSERT(qps >= 0.0, "negative load");
    lcLoadQps_ = qps;
    lcSim_->setLoadQps(qps);
}

void
MulticoreSim::setLcLoadFraction(double fraction)
{
    CS_ASSERT(mix_.lc.maxQps > 0.0,
              "LC profile not calibrated (maxQps == 0); run "
              "calibrateMaxQps first");
    setLcLoadQps(fraction * mix_.lc.maxQps);
}

void
MulticoreSim::setPhaseDrift(double amplitude, double period_sec)
{
    CS_ASSERT(amplitude >= 0.0 && amplitude < 1.0,
              "phase-drift amplitude out of [0, 1): ", amplitude);
    CS_ASSERT(period_sec > 0.0, "phase-drift period must be positive");
    phaseDriftAmplitude_ = amplitude;
    phaseDriftPeriodSec_ = period_sec;
}

double
MulticoreSim::phaseScale(std::size_t job_index, double t) const
{
    CS_ASSERT(job_index < phaseOffsets_.size(), "job index out of range");
    return 1.0 + phaseDriftAmplitude_ *
           std::sin(2.0 * M_PI * t / phaseDriftPeriodSec_ +
                    phaseOffsets_[job_index]);
}

const AppProfile &
MulticoreSim::driftedProfile(std::size_t job_index, double t) const
{
    const AppProfile &base =
        job_index == 0 ? mix_.lc : mix_.batch[job_index - 1];
    // Copy-assign into the scratch profile: the std::string name
    // reuses its capacity, so the per-phase hot path stays heap-free.
    AppProfile &drifted = driftScratch_[job_index == 0 ? 0 : 1];
    drifted = base;
    drifted.apki = base.apki * phaseScale(job_index, t);
    return drifted;
}

double
MulticoreSim::contentionScale(const SliceDecision &decision,
                              double lc_utilization) const
{
    const std::size_t batch_cores =
        params_.numCores > decision.lcCores
            ? params_.numCores - decision.lcCores : 0;
    std::size_t active = 0;
    for (std::size_t j = 0; j < decision.batchActive.size(); ++j)
        active += (decision.batchActive[j] && slotOccupied_[j]) ? 1 : 0;
    const double share =
        active == 0 ? 0.0
                    : std::min(1.0, static_cast<double>(batch_cores) /
                                    static_cast<double>(active));

    double scale = 1.0;
    // Two fixpoint iterations: bandwidth lowers IPS which lowers
    // bandwidth; the second pass is within a few percent of converged.
    for (int iter = 0; iter < 2; ++iter) {
        double total_bw = 0.0;
        const AppProfile &lc = driftedProfile(0, now_);
        total_bw += missBandwidthGBs(lc, decision.lcConfig, params_,
                                     scale, decision.reconfigurable) *
                    lc_utilization *
                    static_cast<double>(decision.lcCores);
        for (std::size_t j = 0; j < mix_.batch.size(); ++j) {
            if (!decision.batchActive[j] || !slotOccupied_[j])
                continue;
            const AppProfile &app = driftedProfile(j + 1, now_);
            total_bw += missBandwidthGBs(app, decision.batchConfigs[j],
                                         params_, scale,
                                         decision.reconfigurable) *
                        share;
        }
        scale = 1.0 + kMemContentionStrength *
                total_bw / kPeakMemBandwidthGBs;
    }
    return scale;
}

std::vector<ProfilePair>
MulticoreSim::profileJobs(std::size_t lc_cores, bool reconfigurable)
{
    std::vector<ProfilePair> pairs;
    profileJobsInto(pairs, lc_cores, reconfigurable);
    return pairs;
}

void
MulticoreSim::profileJobsInto(std::vector<ProfilePair> &out,
                              std::size_t lc_cores,
                              bool reconfigurable)
{
    const std::size_t rank1 = oneWayRank();
    const JobConfig wide(CoreConfig::widest(), rank1);
    const JobConfig narrow(CoreConfig::narrowest(), rank1);

    // Representative contention during profiling: half the chip wide,
    // half narrow. Build a synthetic decision reflecting that (in the
    // persistent scratch so repeated quanta reuse its capacity).
    SliceDecision &mixture = profileMixture_;
    mixture.lcConfig = wide;
    mixture.lcCores = lc_cores;
    mixture.batchConfigs.resize(mix_.batch.size());
    mixture.batchActive.assign(mix_.batch.size(), true);
    mixture.reconfigurable = reconfigurable;
    for (std::size_t j = 0; j < mix_.batch.size(); ++j)
        mixture.batchConfigs[j] = (j % 2 == 0) ? wide : narrow;

    const AppProfile &lc_now = driftedProfile(0, now_);
    const double lc_ips_wide =
        coreIps(lc_now, wide, params_, 1.0, reconfigurable);
    double util_est = 1.0;
    if (lc_ips_wide > 0.0 && lc_cores > 0) {
        util_est = std::min(1.0, lcLoadQps_ *
                            lc_now.requestInstructions() /
                            (static_cast<double>(lc_cores) *
                             lc_ips_wide));
    }
    const double mem_scale = contentionScale(mixture, util_est);

    out.resize(1 + mix_.batch.size());

    // LC job: power sampled at both extremes; BIPS is not the LC
    // metric (tail latency comes from steady-state history instead).
    {
        const double ipc_wide = coreIpc(lc_now, wide, params_, mem_scale);
        const double ipc_narrow =
            coreIpc(lc_now, narrow, params_, mem_scale);
        out[0].powerWide =
            corePower(lc_now, wide.core(), ipc_wide * util_est, params_,
                      reconfigurable) *
            (1.0 + rng_.normal(0.0, kSampleNoise));
        out[0].powerNarrow =
            corePower(lc_now, narrow.core(), ipc_narrow * util_est,
                      params_, reconfigurable) *
            (1.0 + rng_.normal(0.0, kSampleNoise));
        out[0].bipsWide = coreBips(lc_now, wide, params_, mem_scale,
                                   reconfigurable);
        out[0].bipsNarrow = coreBips(lc_now, narrow, params_,
                                     mem_scale, reconfigurable);
    }

    for (std::size_t j = 0; j < mix_.batch.size(); ++j) {
        ProfilePair &pair = out[j + 1];
        if (!slotOccupied_[j]) {
            // Vacant slot: no job to sample (and no RNG draws, so
            // churn changes the stream only where jobs changed).
            pair = ProfilePair{};
            continue;
        }
        const AppProfile &app = driftedProfile(j + 1, now_);
        const double ipc_w = coreIpc(app, wide, params_, mem_scale);
        const double ipc_n = coreIpc(app, narrow, params_, mem_scale);
        const double freq =
            coreFrequencyGHz(params_, reconfigurable);
        pair.bipsWide =
            ipc_w * freq * (1.0 + rng_.normal(0.0, kSampleNoise));
        pair.bipsNarrow =
            ipc_n * freq * (1.0 + rng_.normal(0.0, kSampleNoise));
        pair.powerWide =
            corePower(app, wide.core(), ipc_w, params_, reconfigurable) *
            (1.0 + rng_.normal(0.0, kSampleNoise));
        pair.powerNarrow =
            corePower(app, narrow.core(), ipc_n, params_,
                      reconfigurable) *
            (1.0 + rng_.normal(0.0, kSampleNoise));

        // Instructions retired during the two 1 ms samples.
        const double instr =
            (pair.bipsWide + pair.bipsNarrow) * 1e9 * params_.sampleSec;
        batchInstr_[j] += instr;
        totalBatchInstr_ += instr;
    }

    // The LC service runs the 2 ms at the average of the two
    // profiling rates.
    const double lc_ips_avg =
        0.5 * (coreIps(lc_now, wide, params_, mem_scale, reconfigurable) +
               coreIps(lc_now, narrow, params_, mem_scale,
                       reconfigurable));
    lcSim_->setServers(std::max<std::size_t>(lc_cores, 1));
    lcSim_->setIpsPerCore(lc_ips_avg);
    lcSim_->run(params_.sampleSec *
                static_cast<double>(params_.numProfilingSamples));

    now_ = lcSim_->now();
}

void
MulticoreSim::runPhase(const SliceDecision &decision, double dur,
                       PhaseTotals &totals)
{
    if (dur <= 0.0)
        return;
    CS_ASSERT(decision.batchConfigs.size() == mix_.batch.size() &&
              decision.batchActive.size() == mix_.batch.size(),
              "decision shape does not match the mix");
    CS_ASSERT(decision.lcCores >= 1 &&
              decision.lcCores < params_.numCores,
              "LC core count ", decision.lcCores, " out of range");

    const std::size_t batch_cores = params_.numCores - decision.lcCores;
    std::size_t active = 0;
    for (std::size_t j = 0; j < decision.batchActive.size(); ++j)
        active += (decision.batchActive[j] && slotOccupied_[j]) ? 1 : 0;
    const double share =
        active == 0 ? 0.0
                    : std::min(1.0, static_cast<double>(batch_cores) /
                                    static_cast<double>(active));

    // --- latency-critical service ------------------------------------
    const AppProfile &lc_now = driftedProfile(0, now_);
    const double util_prev = lcSim_->utilization();
    const double util_est = util_prev > 0.0 ? util_prev : 0.5;
    const double mem_scale = contentionScale(decision, util_est);

    const double lc_ips = coreIps(lc_now, decision.lcConfig, params_,
                                  mem_scale, decision.reconfigurable);
    lcSim_->setServers(decision.lcCores);
    lcSim_->setIpsPerCore(lc_ips);
    const double lc_start = lcSim_->now();
    lcSim_->run(dur);
    CS_ASSERT(std::abs(lcSim_->now() - (lc_start + dur)) < 1e-9,
              "LC simulator time drifted");

    const double lc_util = lcSim_->utilization();
    const double lc_ipc =
        coreIpc(lc_now, decision.lcConfig, params_, mem_scale);
    const double lc_core_power =
        corePower(lc_now, decision.lcConfig.core(), lc_ipc * lc_util,
                  params_, decision.reconfigurable);
    const double lc_power =
        lc_core_power * static_cast<double>(decision.lcCores);

    // --- batch jobs ----------------------------------------------------
    double chip_power = lc_power + llcPower(params_);
    std::size_t busy_batch_cores = 0;
    for (std::size_t j = 0; j < mix_.batch.size(); ++j) {
        if (!decision.batchActive[j] || !slotOccupied_[j])
            continue;
        const AppProfile &app = driftedProfile(j + 1, now_);
        const double ipc = coreIpc(app, decision.batchConfigs[j],
                                   params_, mem_scale);
        const double bips =
            ipc * coreFrequencyGHz(params_, decision.reconfigurable);
        const double instr = bips * 1e9 * dur * share;
        totals.batchInstr[j] += instr;
        batchInstr_[j] += instr;
        totalBatchInstr_ += instr;

        const double job_power =
            corePower(app, decision.batchConfigs[j].core(), ipc,
                      params_, decision.reconfigurable) *
            share;
        totals.batchPowerSeconds[j] += job_power * dur;
        chip_power += job_power;
        ++busy_batch_cores;
    }
    busy_batch_cores =
        std::min(busy_batch_cores, batch_cores);
    const std::size_t gated =
        batch_cores > busy_batch_cores ? batch_cores - busy_batch_cores
                                       : 0;
    chip_power += gatedCorePower() * static_cast<double>(gated);

    totals.duration += dur;
    totals.powerSeconds += chip_power * dur;
    totals.lcPowerSeconds += lc_power * dur;
    now_ = lcSim_->now();
}

SliceMeasurement
MulticoreSim::runSlice(const SliceDecision &decision, double duration,
                       bool fresh_lc_window)
{
    SliceMeasurement m;
    runSliceInto(m, decision, duration, fresh_lc_window);
    return m;
}

void
MulticoreSim::runSliceInto(SliceMeasurement &m,
                           const SliceDecision &decision,
                           double duration, bool fresh_lc_window)
{
    if (duration < 0.0)
        duration = params_.timesliceSec;

    PhaseTotals &totals = totalsScratch_;
    totals.duration = 0.0;
    totals.powerSeconds = 0.0;
    totals.lcPowerSeconds = 0.0;
    totals.batchInstr.assign(mix_.batch.size(), 0.0);
    totals.batchPowerSeconds.assign(mix_.batch.size(), 0.0);

    m.timeSec = now_;
    m.lcLoadQps = lcLoadQps_;
    m.batchInstructions = 0.0;
    if (fresh_lc_window)
        lcSim_->clearWindow();

    double overhead = std::min(decision.overheadSec, duration);
    if (overhead > 0.0 && lastDecision_) {
        holdoverScratch_ = *lastDecision_;
        holdoverScratch_.overheadSec = 0.0;
        runPhase(holdoverScratch_, overhead, totals);
    } else {
        overhead = 0.0;
    }
    runPhase(decision, duration - overhead, totals);
    lastDecision_ = decision;

    // --- assemble the measurement --------------------------------------
    m.lcTailLatency = lcSim_->tailLatency(99.0);
    m.lcUtilization = lcSim_->utilization();
    m.lcCompleted = lcSim_->completedInWindow();

    m.batchBips.resize(mix_.batch.size());
    m.batchPower.resize(mix_.batch.size());
    m.batchJobInstructions = totals.batchInstr;
    for (std::size_t j = 0; j < mix_.batch.size(); ++j) {
        if (!slotOccupied_[j]) {
            m.batchBips[j] = 0.0;
            m.batchPower[j] = 0.0;
            continue;
        }
        const double noise = 1.0 + rng_.normal(0.0, kSliceNoise);
        m.batchBips[j] =
            totals.batchInstr[j] / duration / 1e9 * noise;
        m.batchPower[j] = totals.duration > 0.0
            ? totals.batchPowerSeconds[j] / totals.duration *
              (1.0 + rng_.normal(0.0, kSliceNoise))
            : 0.0;
        m.batchInstructions += totals.batchInstr[j];
    }
    m.lcPower = totals.duration > 0.0
        ? totals.lcPowerSeconds / totals.duration : 0.0;
    m.totalPower = totals.duration > 0.0
        ? totals.powerSeconds / totals.duration : 0.0;
}

double
MulticoreSim::truthBatchBips(std::size_t job, const JobConfig &config,
                             bool reconfigurable) const
{
    CS_ASSERT(job < mix_.batch.size(), "batch job index out of range");
    return coreBips(driftedProfile(job + 1, now_), config, params_, 1.0,
                    reconfigurable);
}

double
MulticoreSim::truthBatchPower(std::size_t job, const JobConfig &config,
                              bool reconfigurable) const
{
    CS_ASSERT(job < mix_.batch.size(), "batch job index out of range");
    const AppProfile &app = driftedProfile(job + 1, now_);
    const double ipc = coreIpc(app, config, params_);
    return corePower(app, config.core(), ipc, params_, reconfigurable);
}

} // namespace cuttlesys
