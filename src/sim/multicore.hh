/**
 * @file
 * The 32-core multicore simulator.
 *
 * Stands in for the paper's zsim+McPAT testbed. One latency-critical
 * service occupies a cluster of cores (16 at t=0, changeable through
 * core relocation); each of the 16 batch jobs owns one of the
 * remaining cores (time-multiplexing proportionally when relocation
 * leaves fewer cores than jobs). Per 100 ms timeslice the simulator:
 *
 *  - executes the 2 ms profiling schedule (half the cores widest, half
 *    narrowest, then swapped — Section VIII-A1) and returns noisy
 *    1 ms samples of throughput and power,
 *  - runs the remaining slice at the scheduler's chosen
 *    configurations, with LLC-way-partition-aware miss ratios and a
 *    memory-bandwidth contention fixpoint coupling the jobs,
 *  - drives the LC service's discrete-event queue to produce the
 *    slice's p99, and
 *  - accounts instructions, per-job power and chip power.
 *
 * Slow multiplicative phase drift on each job's memory intensity
 * models the "applications changing execution phases" the paper cites
 * as a source of runtime mispredictions (Section VIII-B).
 */

#ifndef CUTTLESYS_SIM_MULTICORE_HH
#define CUTTLESYS_SIM_MULTICORE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "apps/mix.hh"
#include "common/rng.hh"
#include "config/job_config.hh"
#include "config/params.hh"
#include "lcsim/queue_sim.hh"

namespace cuttlesys {

/** A scheduler's decision for one timeslice. */
struct SliceDecision
{
    JobConfig lcConfig;              //!< config of every LC core
    std::size_t lcCores = 16;        //!< cores assigned to the LC app
    std::vector<JobConfig> batchConfigs; //!< per batch job
    std::vector<bool> batchActive;   //!< false = core gated off
    /**
     * Whether cores pay reconfiguration overheads. Fixed-core designs
     * (core gating, asymmetric multicores) set this false.
     */
    bool reconfigurable = true;
    /**
     * Scheduler bookkeeping time (profiling + inference + search)
     * charged at the head of the slice, seconds.
     */
    double overheadSec = 0.0;
};

/** What the system measured during one timeslice. */
struct SliceMeasurement
{
    double timeSec = 0.0;        //!< slice start time
    double lcLoadQps = 0.0;      //!< offered load during the slice
    double lcTailLatency = 0.0;  //!< p99 over the slice, seconds
    double lcUtilization = 0.0;  //!< LC cluster busy fraction
    std::size_t lcCompleted = 0; //!< requests completed in the slice
    std::vector<double> batchBips;  //!< measured BIPS per batch job
    std::vector<double> batchPower; //!< per-job core power, W
    double lcPower = 0.0;        //!< LC cluster power, W
    double totalPower = 0.0;     //!< chip power incl. LLC, W
    double batchInstructions = 0.0; //!< total batch instructions
    std::vector<double> batchJobInstructions; //!< per-job instructions
};

/** The 2-sample profiling data for one job (Section VIII-A1). */
struct ProfilePair
{
    double bipsWide = 0.0;    //!< BIPS at {6,6,6}, 1 LLC way
    double bipsNarrow = 0.0;  //!< BIPS at {2,2,2}, 1 LLC way
    double powerWide = 0.0;   //!< core power at {6,6,6}, W
    double powerNarrow = 0.0; //!< core power at {2,2,2}, W
};

/** Simulator of one colocation on the 32-core machine. */
class MulticoreSim
{
  public:
    MulticoreSim(SystemParams params, WorkloadMix mix,
                 std::uint64_t seed = 1);

    /** Number of batch jobs in the mix. */
    std::size_t numBatchJobs() const { return mix_.batch.size(); }

    const SystemParams &params() const { return params_; }
    const WorkloadMix &mix() const { return mix_; }

    /** Offered LC load for subsequent slices, as queries/s. */
    void setLcLoadQps(double qps);

    /** Offered LC load as a fraction of the calibrated max QPS. */
    void setLcLoadFraction(double fraction);

    double lcLoadQps() const { return lcLoadQps_; }

    /**
     * Mark batch slot @p slot as occupied or vacant. Vacant slots
     * retire no instructions, contribute no profiling samples or
     * memory traffic, and their cores count as gated for power. The
     * fleet layer parks departed jobs this way until the cluster
     * placement policy refills the slot.
     */
    void setBatchSlotOccupied(std::size_t slot, bool occupied);

    /** Whether batch slot @p slot currently holds a job. */
    bool batchSlotOccupied(std::size_t slot) const;

    /** Number of occupied batch slots. */
    std::size_t occupiedBatchSlots() const;

    /**
     * Install @p profile in batch slot @p slot (marks it occupied).
     * The new job gets a fresh phase offset from a dedicated churn
     * RNG so arrivals never perturb the main measurement stream, and
     * its cumulative instruction counter restarts at zero.
     */
    void replaceBatchJob(std::size_t slot, const AppProfile &profile);

    /**
     * Execute the profiling schedule (2 x 1 ms) and return noisy
     * samples for the LC job (index 0 of the conceptual job list) and
     * every batch job. Advances simulated time by 2 ms and serves LC
     * requests at the (degraded) profiling configurations meanwhile.
     */
    std::vector<ProfilePair> profileJobs(std::size_t lc_cores,
                                         bool reconfigurable = true);

    /**
     * Allocation-free variant of profileJobs(): fills @p out (resized
     * to 1 + numBatchJobs; capacity is reused across quanta).
     */
    void profileJobsInto(std::vector<ProfilePair> &out,
                         std::size_t lc_cores,
                         bool reconfigurable = true);

    /**
     * Run @p duration seconds of the current timeslice under
     * @p decision (pass the slice length minus any profiling time the
     * caller already consumed; a negative value means one full
     * timeslice). If the decision carries scheduler overhead, the
     * first overheadSec run under the *previous* decision — the new
     * configuration only takes effect once the scheduler has computed
     * it (Fig 3's timeline). The LC queue carries over between
     * slices; batch instruction counters accumulate.
     */
    SliceMeasurement runSlice(const SliceDecision &decision,
                              double duration = -1.0,
                              bool fresh_lc_window = true);

    /**
     * Allocation-free variant of runSlice(): writes the measurement
     * into @p m, whose vector capacities are reused across quanta.
     */
    void runSliceInto(SliceMeasurement &m,
                      const SliceDecision &decision,
                      double duration = -1.0,
                      bool fresh_lc_window = true);

    /** Current simulated time, seconds. */
    double now() const { return now_; }

    /** Cumulative batch instructions since construction. */
    double totalBatchInstructions() const { return totalBatchInstr_; }

    /**
     * Ground-truth (noise-free, uncontended, phase-at-time-now) BIPS
     * of batch job @p job at @p config. Exposed for oracle baselines
     * and accuracy studies.
     */
    double truthBatchBips(std::size_t job, const JobConfig &config,
                          bool reconfigurable = true) const;

    /** Ground-truth core power of batch job @p job at @p config. */
    double truthBatchPower(std::size_t job, const JobConfig &config,
                           bool reconfigurable = true) const;

    /**
     * Phase-drift multiplier applied to a job's memory intensity at
     * time @p t. Job 0 is the LC app; batch jobs are 1-based.
     */
    double phaseScale(std::size_t job_index, double t) const;

    /**
     * Override the phase-drift dynamics. The defaults (kPhaseDrift*)
     * cycle a job's memory intensity every 7 timeslices — a
     * deliberately fast cadence that exercises online reconstruction
     * in second-long unit tests. Scenario-scale runs (the fleet
     * benchmarks' compressed day) should pick a period consistent
     * with their time compression: real application phases span many
     * decision quanta.
     */
    void setPhaseDrift(double amplitude, double period_sec);

    double phaseDriftAmplitude() const { return phaseDriftAmplitude_; }
    double phaseDriftPeriodSec() const { return phaseDriftPeriodSec_; }

    /** Measurement-noise level of a full-slice observation. */
    static constexpr double kSliceNoise = 0.01;
    /** Measurement-noise level of a 1 ms profiling sample. */
    static constexpr double kSampleNoise = 0.04;

  private:
    /**
     * Memory-contention fixpoint: the factor by which DRAM latency is
     * inflated given every job's configuration and activity.
     */
    double contentionScale(const SliceDecision &decision,
                           double lc_utilization) const;

    /**
     * Effective profile of a job with phase drift applied at t.
     * Returns a reference into a mutable scratch profile (one for the
     * LC app, one for batch jobs — the two never alias within a
     * caller) so the hot path copies no std::string per call. The
     * reference is invalidated by the next call with the same class
     * of job index.
     */
    const AppProfile &driftedProfile(std::size_t job_index,
                                     double t) const;

    SystemParams params_;
    WorkloadMix mix_;
    Rng rng_;
    Rng churnRng_; //!< phase offsets for churned-in jobs only

    double now_ = 0.0;
    double lcLoadQps_ = 0.0;
    std::unique_ptr<LcQueueSim> lcSim_;

    /** Accumulator for one phase of a slice (overhead vs. steady). */
    struct PhaseTotals
    {
        double duration = 0.0;
        std::vector<double> batchInstr;  //!< per job, this slice
        double powerSeconds = 0.0;       //!< integral of chip power
        double lcPowerSeconds = 0.0;
        std::vector<double> batchPowerSeconds; //!< per job
    };

    /** Execute @p dur seconds under @p decision, folding into totals. */
    void runPhase(const SliceDecision &decision, double dur,
                  PhaseTotals &totals);

    std::vector<double> phaseOffsets_; //!< per job (0 = LC)
    double phaseDriftAmplitude_;       //!< kPhaseDriftAmplitude default
    double phaseDriftPeriodSec_;       //!< kPhaseDriftPeriodSec default
    std::vector<double> batchInstr_;   //!< cumulative per batch job
    std::vector<bool> slotOccupied_;   //!< per batch slot
    double totalBatchInstr_ = 0.0;
    std::optional<SliceDecision> lastDecision_;

    // Persistent per-quantum scratch: sized once, reused every slice
    // so the steady-state path never touches the heap.
    PhaseTotals totalsScratch_;
    SliceDecision holdoverScratch_;
    SliceDecision profileMixture_;
    mutable AppProfile driftScratch_[2]; //!< [0] LC, [1] batch
};

/** Memory subsystem contention constants (see DESIGN.md). */
inline constexpr double kPeakMemBandwidthGBs = 80.0;
inline constexpr double kMemContentionStrength = 0.5;

/** Phase-drift defaults (amplitude, period seconds). */
inline constexpr double kPhaseDriftAmplitude = 0.08;
inline constexpr double kPhaseDriftPeriodSec = 0.7;

} // namespace cuttlesys

#endif // CUTTLESYS_SIM_MULTICORE_HH
