#include "sim/driver.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace cuttlesys {

double
gmeanBatchBips(const SliceMeasurement &m, double floor_bips)
{
    if (m.batchBips.empty())
        return 0.0;
    // Inline flooring, replicating geomean()'s exact operation order
    // (sequential log-sum, then one exp) without the intermediate
    // vector — this is called once per quantum per node and must not
    // touch the heap.
    double logSum = 0.0;
    for (double b : m.batchBips)
        logSum += std::log(std::max(b, floor_bips));
    return std::exp(logSum /
                    static_cast<double>(m.batchBips.size()));
}

ColocationRun::ColocationRun(MulticoreSim &sim, Scheduler &scheduler,
                             const DriverOptions &opts)
    : sim_(sim), scheduler_(scheduler), opts_(opts),
      trace_(opts.traceSink),
      ownValidator_(
          check::ValidatorOptions{.failMode = opts.validatorFailMode})
{
    CS_ASSERT(opts_.maxPowerW > 0.0, "maxPowerW must be set");
    const SystemParams &params = sim_.params();
    numSlices_ = static_cast<std::size_t>(
        std::round(opts_.durationSec / params.timesliceSec));
    CS_ASSERT(numSlices_ > 0, "run shorter than one timeslice");

    if (opts_.keepSliceRecords)
        result_.slices.reserve(numSlices_);

    // Before the first decision exists, the profiling pass has to
    // assume some LC core count. Derive it from the machine (half the
    // cores) unless the caller pinned one explicitly.
    initialLcCores_ = opts_.initialLcCores > 0
        ? std::min(opts_.initialLcCores, params.numCores)
        : std::max<std::size_t>(1, params.numCores / 2);

    // Initial occupants are account 0 (the anonymous single tenant)
    // until a fleet controller stamps real identities through
    // setSlotAccount(); vacant slots are -1 from the start.
    slotAccounts_.resize(sim_.numBatchJobs());
    for (std::size_t j = 0; j < slotAccounts_.size(); ++j)
        slotAccounts_[j] = sim_.batchSlotOccupied(j) ? 0 : -1;
    slotWorkflows_.assign(sim_.numBatchJobs(), -1);
    slotDagTasks_.assign(sim_.numBatchJobs(), -1);

    // The trace object lives inside this run; schedulers only borrow
    // a pointer, so the destructor detaches.
    tracing_ = opts_.traceSink != nullptr;
    if (tracing_)
        scheduler_.attachTrace(&trace_);

    // The decision oracle follows the same borrow discipline. An
    // externally supplied validator wins over the run's own.
    validator_ = opts_.validator
        ? opts_.validator
        : (opts_.validateDecisions ? &ownValidator_ : nullptr);
    if (validator_) {
        scheduler_.attachValidator(validator_);
        violationsBefore_ = validator_->violationCount();
    }
}

ColocationRun::~ColocationRun()
{
    // A panicking validator (or a throwing scheduler) must not leave
    // the scheduler holding pointers into this object.
    scheduler_.attachTrace(nullptr);
    scheduler_.attachValidator(nullptr);
}

void
ColocationRun::overrideLoadFraction(double fraction)
{
    CS_ASSERT(fraction >= 0.0, "negative load fraction");
    loadOverride_ = fraction;
}

void
ColocationRun::overridePowerBudgetW(double watts)
{
    CS_ASSERT(watts > 0.0, "power budget must be positive");
    budgetOverride_ = watts;
}

void
ColocationRun::queueJobEvent(const JobEvent &event)
{
    CS_ASSERT(event.slot < sim_.numBatchJobs(),
              "job event slot out of range");
    pendingEvents_.push_back(event);
}

void
ColocationRun::setSlotAccount(std::size_t slot, std::int32_t account)
{
    CS_ASSERT(slot < slotAccounts_.size(),
              "slot account out of range");
    slotAccounts_[slot] = account;
}

void
ColocationRun::applyJobEvents()
{
    preemptedScratch_.clear();
    completedWorkflows_.clear();
    completedAccounts_.clear();
    completedMakespans_.clear();
    dagHits_ = 0;
    dagMisses_ = 0;
    dagTransferBytes_ = 0.0;
    if (opts_.jobEventHook) {
        hookEvents_.clear();
        opts_.jobEventHook(slice_, hookEvents_);
        for (const JobEvent &e : hookEvents_)
            pendingEvents_.push_back(e);
    }
    for (const JobEvent &e : pendingEvents_) {
        CS_ASSERT(e.slot < sim_.numBatchJobs(),
                  "job event slot out of range");
        if (e.preemption) {
            // The victim's account is read before the arrival
            // overwrites the slot: the trace records who was evicted.
            ++result_.jobPreemptions;
            preemptedScratch_.push_back(slotAccounts_[e.slot]);
        }
        if (e.workflowId >= 0)
            dagSeen_ = true;
        // A departing DAG task that finishes its workflow is recorded
        // before the slot maps change hands below.
        if (e.departure && e.workflowMakespan >= 0) {
            completedWorkflows_.push_back(e.workflowId);
            completedAccounts_.push_back(slotAccounts_[e.slot]);
            completedMakespans_.push_back(e.workflowMakespan);
        }
        if (e.arrival) {
            sim_.replaceBatchJob(e.slot, *e.arrival);
            slotAccounts_[e.slot] = e.account;
            slotWorkflows_[e.slot] = e.workflowId;
            slotDagTasks_[e.slot] = e.workflowTask;
            dagHits_ += e.artifactHits;
            dagMisses_ += e.artifactMisses;
            dagTransferBytes_ += e.transferBytes;
            ++result_.jobArrivals;
        } else if (e.departure) {
            sim_.setBatchSlotOccupied(e.slot, false);
            slotAccounts_[e.slot] = -1;
            slotWorkflows_[e.slot] = -1;
            slotDagTasks_[e.slot] = -1;
        }
        if (e.departure)
            ++result_.jobDepartures;
        // Either way the slot's history belongs to a job that is no
        // longer (only) there: drop the scheduler's learned state.
        scheduler_.onJobChurn(e.slot);
    }
    pendingEvents_.clear();
}

void
ColocationRun::step()
{
    CS_ASSERT(!done(), "step() past the configured duration");
    const SystemParams &params = sim_.params();
    const std::size_t s = slice_;

    applyJobEvents();

    const double t = sim_.now();
    const double load_fraction =
        loadOverride_ ? *loadOverride_ : opts_.loadPattern.at(t);
    loadOverride_.reset();
    sim_.setLcLoadFraction(load_fraction);
    const double budget = budgetOverride_
        ? *budgetOverride_
        : opts_.powerPattern.at(t) * opts_.maxPowerW;
    budgetOverride_.reset();

    if (tracing_) {
        trace_.begin(s, t);
        telemetry::QuantumRecord &rec = trace_.record();
        rec.node = opts_.nodeIndex;
        rec.scheduler = scheduler_.name();
        rec.loadFraction = load_fraction;
        rec.powerBudgetW = budget;
    }

    ctx_.sliceIndex = s;
    ctx_.timeSec = t;
    ctx_.powerBudgetW = budget;
    ctx_.lcQosSec = sim_.mix().lc.qosSeconds();
    ctx_.previous = havePrev_ ? &prevMeasurement_ : nullptr;
    ctx_.previousDecision = havePrev_ ? &prevDecision_ : nullptr;
    ctx_.profiles.clear();

    double remaining = params.timesliceSec;
    if (scheduler_.wantsProfiling()) {
        const std::size_t lc_cores =
            havePrev_ ? prevDecision_.lcCores : initialLcCores_;
        telemetry::PhaseTimer timer(tracing_ ? &trace_ : nullptr,
                                    telemetry::Phase::Profile);
        if (tracing_)
            trace_.record().profiledLcCores = lc_cores;
        sim_.profileJobsInto(ctx_.profiles, lc_cores,
                             scheduler_.usesReconfigurableCores());
        remaining -= params.sampleSec *
            static_cast<double>(params.numProfilingSamples);
    }

    scheduler_.decideInto(ctx_, decision_);

    if (validator_) {
        check::DecisionContext vctx;
        vctx.params = &params;
        vctx.numBatchJobs = sim_.numBatchJobs();
        vctx.sliceIndex = s;
        vctx.powerBudgetW = budget;
        vctx.capEnforced = scheduler_.enforcesPowerCap();
        vctx.record = tracing_ ? &trace_.record() : nullptr;
        validator_->validate(decision_, vctx);
    }

    {
        telemetry::PhaseTimer timer(tracing_ ? &trace_ : nullptr,
                                    telemetry::Phase::Execute);
        sim_.runSliceInto(measurement_, decision_, remaining);
    }

    lastLoadFraction_ = load_fraction;
    lastBudgetW_ = budget;
    lastQosViolated_ =
        measurement_.lcTailLatency > sim_.mix().lc.qosSeconds();
    lastGmeanBips_ = gmeanBatchBips(measurement_);

    result_.totalBatchInstructions += measurement_.batchInstructions;
    result_.qosViolations += lastQosViolated_ ? 1 : 0;
    // Small tolerance: the budget is enforced on predicted power;
    // measurement noise alone should not count as a violation.
    result_.powerViolations +=
        measurement_.totalPower > budget * 1.02 ? 1 : 0;
    gmeanSum_ += lastGmeanBips_;
    powerSum_ += measurement_.totalPower;

    if (tracing_) {
        telemetry::QuantumRecord &rec = trace_.record();
        rec.executedTailSec = measurement_.lcTailLatency;
        rec.executedPowerW = measurement_.totalPower;
        rec.qosViolated = lastQosViolated_;
        rec.gmeanBips = lastGmeanBips_;
        // Tenancy stamping: who held each slot this quantum, what it
        // measured, and the width-weighted core allocation it was
        // charged (totalWidth/18; a gated or vacant slot charges 0).
        rec.slotAccounts = slotAccounts_;
        rec.slotBips = measurement_.batchBips;
        rec.slotCores.resize(slotAccounts_.size());
        for (std::size_t j = 0; j < slotAccounts_.size(); ++j) {
            const bool active = slotAccounts_[j] >= 0 &&
                j < decision_.batchActive.size() &&
                decision_.batchActive[j];
            rec.slotCores[j] = active
                ? static_cast<double>(
                      decision_.batchConfigs[j].core().totalWidth()) /
                    18.0
                : 0.0;
        }
        rec.preemptedAccounts = preemptedScratch_;
        // DAG stamping only once a DAG event has been seen: non-DAG
        // runs leave the group empty and their JSONL bitwise-legacy.
        if (dagSeen_) {
            rec.slotWorkflows = slotWorkflows_;
            rec.slotDagTasks = slotDagTasks_;
            rec.artifactHits = dagHits_;
            rec.artifactMisses = dagMisses_;
            rec.transferBytes = dagTransferBytes_;
            rec.completedWorkflows = completedWorkflows_;
            rec.completedAccounts = completedAccounts_;
            rec.completedMakespans = completedMakespans_;
        }
        trace_.end();
    }

    if (opts_.keepSliceRecords) {
        SliceRecord record;
        record.loadFraction = load_fraction;
        record.powerBudgetW = budget;
        record.qosViolated = lastQosViolated_;
        record.decision = decision_;
        record.measurement = measurement_;
        result_.slices.push_back(std::move(record));
    }

    // Swap (not copy) the previous-slice buffers: the vectors trade
    // storage, so no allocation and no stale aliasing.
    std::swap(prevDecision_, decision_);
    std::swap(prevMeasurement_, measurement_);
    havePrev_ = true;
    ++slice_;
}

const RunResult &
ColocationRun::result()
{
    const double steps =
        static_cast<double>(std::max<std::size_t>(slice_, 1));
    result_.meanGmeanBips = gmeanSum_ / steps;
    result_.meanPowerW = powerSum_ / steps;
    if (tracing_)
        result_.traceSummary = trace_.summary();
    if (validator_) {
        result_.invariantViolations =
            validator_->violationCount() - violationsBefore_;
    }
    return result_;
}

RunResult
ColocationRun::takeResult()
{
    result();
    return std::move(result_);
}

RunResult
runColocation(MulticoreSim &sim, Scheduler &scheduler,
              const DriverOptions &opts)
{
    ColocationRun run(sim, scheduler, opts);
    while (!run.done())
        run.step();
    return run.takeResult();
}

} // namespace cuttlesys
