#include "sim/driver.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace cuttlesys {

double
gmeanBatchBips(const SliceMeasurement &m, double floor_bips)
{
    if (m.batchBips.empty())
        return 0.0;
    std::vector<double> floored;
    floored.reserve(m.batchBips.size());
    for (double b : m.batchBips)
        floored.push_back(std::max(b, floor_bips));
    return geomean(floored);
}

RunResult
runColocation(MulticoreSim &sim, Scheduler &scheduler,
              const DriverOptions &opts)
{
    CS_ASSERT(opts.maxPowerW > 0.0, "maxPowerW must be set");
    const SystemParams &params = sim.params();
    const std::size_t num_slices = static_cast<std::size_t>(
        std::round(opts.durationSec / params.timesliceSec));
    CS_ASSERT(num_slices > 0, "run shorter than one timeslice");

    RunResult result;
    result.slices.reserve(num_slices);

    // Before the first decision exists, the profiling pass has to
    // assume some LC core count. Derive it from the machine (half the
    // cores) unless the caller pinned one explicitly.
    const std::size_t initial_lc_cores = opts.initialLcCores > 0
        ? std::min(opts.initialLcCores, params.numCores)
        : std::max<std::size_t>(1, params.numCores / 2);

    // The trace object lives on the driver's stack; schedulers only
    // borrow a pointer, so detach before returning.
    telemetry::QuantumTrace trace(opts.traceSink);
    const bool tracing = opts.traceSink != nullptr;
    if (tracing)
        scheduler.attachTrace(&trace);

    // The decision oracle follows the same borrow discipline. An
    // externally supplied validator wins over the driver's own.
    check::ScheduleValidator own_validator(
        check::ValidatorOptions{.failMode = opts.validatorFailMode});
    check::ScheduleValidator *validator = opts.validator
        ? opts.validator
        : (opts.validateDecisions ? &own_validator : nullptr);
    if (validator)
        scheduler.attachValidator(validator);

    // A panicking validator (or a throwing scheduler) must not leave
    // the scheduler holding pointers into this frame.
    struct Detach
    {
        Scheduler &sched;
        ~Detach()
        {
            sched.attachTrace(nullptr);
            sched.attachValidator(nullptr);
        }
    } detach{scheduler};

    SliceDecision prev_decision;
    SliceMeasurement prev_measurement;
    bool have_prev = false;
    double gmean_sum = 0.0;
    double power_sum = 0.0;
    const std::size_t violations_before =
        validator ? validator->violationCount() : 0;

    for (std::size_t s = 0; s < num_slices; ++s) {
        const double t = sim.now();
        const double load_fraction = opts.loadPattern.at(t);
        sim.setLcLoadFraction(load_fraction);
        const double budget = opts.powerPattern.at(t) * opts.maxPowerW;

        if (tracing) {
            trace.begin(s, t);
            telemetry::QuantumRecord &rec = trace.record();
            rec.scheduler = scheduler.name();
            rec.loadFraction = load_fraction;
            rec.powerBudgetW = budget;
        }

        SliceContext ctx;
        ctx.sliceIndex = s;
        ctx.timeSec = t;
        ctx.powerBudgetW = budget;
        ctx.lcQosSec = sim.mix().lc.qosSeconds();
        ctx.previous = have_prev ? &prev_measurement : nullptr;
        ctx.previousDecision = have_prev ? &prev_decision : nullptr;

        double remaining = params.timesliceSec;
        if (scheduler.wantsProfiling()) {
            const std::size_t lc_cores =
                have_prev ? prev_decision.lcCores : initial_lc_cores;
            telemetry::PhaseTimer timer(
                tracing ? &trace : nullptr,
                telemetry::Phase::Profile);
            if (tracing)
                trace.record().profiledLcCores = lc_cores;
            ctx.profiles = sim.profileJobs(
                lc_cores, scheduler.usesReconfigurableCores());
            remaining -= params.sampleSec *
                static_cast<double>(params.numProfilingSamples);
        }

        SliceDecision decision = scheduler.decide(ctx);

        if (validator) {
            check::DecisionContext vctx;
            vctx.params = &params;
            vctx.numBatchJobs = sim.numBatchJobs();
            vctx.sliceIndex = s;
            vctx.powerBudgetW = budget;
            vctx.capEnforced = scheduler.enforcesPowerCap();
            vctx.record = tracing ? &trace.record() : nullptr;
            validator->validate(decision, vctx);
        }

        SliceMeasurement measurement;
        {
            telemetry::PhaseTimer timer(
                tracing ? &trace : nullptr,
                telemetry::Phase::Execute);
            measurement = sim.runSlice(decision, remaining);
        }

        SliceRecord record;
        record.loadFraction = load_fraction;
        record.powerBudgetW = budget;
        record.qosViolated =
            measurement.lcTailLatency > sim.mix().lc.qosSeconds();
        record.decision = decision;
        record.measurement = measurement;

        result.totalBatchInstructions += measurement.batchInstructions;
        result.qosViolations += record.qosViolated ? 1 : 0;
        // Small tolerance: the budget is enforced on predicted power;
        // measurement noise alone should not count as a violation.
        result.powerViolations +=
            measurement.totalPower > budget * 1.02 ? 1 : 0;
        const double gmean = gmeanBatchBips(measurement);
        gmean_sum += gmean;
        power_sum += measurement.totalPower;

        if (tracing) {
            telemetry::QuantumRecord &rec = trace.record();
            rec.executedTailSec = measurement.lcTailLatency;
            rec.executedPowerW = measurement.totalPower;
            rec.qosViolated = record.qosViolated;
            rec.gmeanBips = gmean;
            trace.end();
        }

        prev_decision = decision;
        prev_measurement = measurement;
        have_prev = true;
        result.slices.push_back(std::move(record));
    }

    if (tracing)
        result.traceSummary = trace.summary();
    if (validator) {
        result.invariantViolations =
            validator->violationCount() - violations_before;
    }

    result.meanGmeanBips = gmean_sum / static_cast<double>(num_slices);
    result.meanPowerW = power_sum / static_cast<double>(num_slices);
    return result;
}

} // namespace cuttlesys
