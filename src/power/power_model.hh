/**
 * @file
 * Chip power model (McPAT stand-in; see DESIGN.md).
 *
 * Per-core power is split into a static part, set by the provisioned
 * section widths (downsized sections are power-gated, removing both
 * leakage and clock power — the mechanism reconfigurable cores rely
 * on), and a dynamic part proportional to achieved IPC, frequency and
 * an application activity factor. Reconfigurable cores pay the
 * paper's 18% energy-per-cycle penalty relative to fixed cores
 * (AnyCore RTL analysis, Section VII). Absolute values are sized for
 * a 22 nm, 4 GHz server core: ~3.8 W at {6,6,6} under full load,
 * ~1.1 W at {2,2,2}, 50 mW when core-gated (C6).
 */

#ifndef CUTTLESYS_POWER_POWER_MODEL_HH
#define CUTTLESYS_POWER_POWER_MODEL_HH

#include <vector>

#include "apps/app_profile.hh"
#include "config/job_config.hh"
#include "config/params.hh"

namespace cuttlesys {

/** Static (leakage + clock-tree) power of a core configuration, W. */
double coreStaticPower(const CoreConfig &config);

/**
 * Dynamic power of @p app achieving @p ipc on @p config, W. The IPC
 * argument lets callers fold in utilization: an LC core that is busy
 * 40% of the time passes 0.4x its busy IPC.
 */
double coreDynamicPower(const AppProfile &app, const CoreConfig &config,
                        double ipc, const SystemParams &params);

/**
 * Total power of one active core, W, including the reconfiguration
 * energy penalty when @p reconfigurable.
 */
double corePower(const AppProfile &app, const CoreConfig &config,
                 double ipc, const SystemParams &params,
                 bool reconfigurable = true);

/** Power of a core-gated (C6) core, W. */
double gatedCorePower();

/** Static power of the shared LLC and uncore, W. */
double llcPower(const SystemParams &params);

/**
 * The system's reference maximum power (Section VII-A): the average
 * per-core power across @p apps, each running on a reconfigurable
 * core in the widest configuration with an equal LLC share, scaled to
 * all cores, plus the LLC. Power caps in the evaluation are fractions
 * of this value.
 */
double systemMaxPower(const std::vector<AppProfile> &apps,
                      const SystemParams &params);

} // namespace cuttlesys

#endif // CUTTLESYS_POWER_POWER_MODEL_HH
