#include "power/power_model.hh"

#include "common/logging.hh"
#include "common/stats.hh"
#include "model/core_model.hh"

namespace cuttlesys {

namespace {

// Static power per width unit, W (FE carries the ROB/rename arrays,
// BE the issue queues/register files/FUs, LS the LD/ST queues).
constexpr double kStaticPerFeWidth = 0.080;
constexpr double kStaticPerBeWidth = 0.100;
constexpr double kStaticPerLsWidth = 0.045;

// Width-independent core overhead (L1 caches, TLBs, core clocking), W.
constexpr double kCoreFixedStatic = 0.15;

// Dynamic energy scaling: P_dyn = activity * ipc * freqGHz * kEpiBase
//   * (kEpiFloor + (1 - kEpiFloor) * totalWidth / 18).
// Wider datapaths burn more energy per instruction (larger arrays,
// more bypass), narrower ones less.
constexpr double kEpiBase = 0.275;
constexpr double kEpiFloor = 0.25;

// C6 (core-gated) residual power, W.
constexpr double kGatedPower = 0.05;

// Shared LLC/uncore: static watts per way plus a fixed uncore term.
constexpr double kLlcPerWay = 0.10;
constexpr double kUncoreFixed = 4.0;

} // namespace

double
coreStaticPower(const CoreConfig &config)
{
    return kCoreFixedStatic +
           kStaticPerFeWidth * config.frontEnd() +
           kStaticPerBeWidth * config.backEnd() +
           kStaticPerLsWidth * config.loadStore();
}

double
coreDynamicPower(const AppProfile &app, const CoreConfig &config,
                 double ipc, const SystemParams &params)
{
    CS_ASSERT(ipc >= 0.0, "negative IPC");
    const double width_ratio =
        static_cast<double>(config.totalWidth()) / 18.0;
    const double epi =
        kEpiBase * (kEpiFloor + (1.0 - kEpiFloor) * width_ratio);
    return app.activity * ipc * params.frequencyGHz * epi;
}

double
corePower(const AppProfile &app, const CoreConfig &config, double ipc,
          const SystemParams &params, bool reconfigurable)
{
    const double base = coreStaticPower(config) +
                        coreDynamicPower(app, config, ipc, params);
    const double penalty =
        reconfigurable ? (1.0 + params.reconfigEnergyPenalty) : 1.0;
    return base * penalty;
}

double
gatedCorePower()
{
    return kGatedPower;
}

double
llcPower(const SystemParams &params)
{
    return kUncoreFixed + kLlcPerWay * params.llcWays;
}

double
systemMaxPower(const std::vector<AppProfile> &apps,
               const SystemParams &params)
{
    CS_ASSERT(!apps.empty(), "systemMaxPower needs at least one app");
    const std::size_t equal_rank = 1; // 1 way per core (32 cores/32 ways)
    const JobConfig widest(CoreConfig::widest(), equal_rank);

    std::vector<double> per_core;
    per_core.reserve(apps.size());
    for (const auto &app : apps) {
        const double ipc = coreIpc(app, widest, params);
        per_core.push_back(corePower(app, widest.core(), ipc, params,
                                     true));
    }
    return mean(per_core) * static_cast<double>(params.numCores) +
           llcPower(params);
}

} // namespace cuttlesys
