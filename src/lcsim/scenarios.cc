#include "lcsim/scenarios.hh"

#include <cmath>

#include "common/logging.hh"

namespace cuttlesys {

std::size_t
CompressedDayScenario::quanta(double timesliceSec) const
{
    CS_ASSERT(timesliceSec > 0.0, "timeslice must be positive");
    return static_cast<std::size_t>(
        std::llround(daySeconds / timesliceSec));
}

LoadPattern
CompressedDayScenario::loadPattern(double phaseShiftSec,
                                   double scale) const
{
    return LoadPattern::diurnal(loadTrough, loadPeak, daySeconds)
        .shifted(phaseShiftSec)
        .scaled(scale);
}

LoadPattern
CompressedDayScenario::powerPattern() const
{
    CS_ASSERT(peakWindowStartSec <= peakWindowEndSec,
              "peak window ends before it starts");
    return LoadPattern::steps({{0.0, nightBudgetFrac},
                               {peakWindowStartSec, peakBudgetFrac},
                               {peakWindowEndSec, nightBudgetFrac}});
}

} // namespace cuttlesys
