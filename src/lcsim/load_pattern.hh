/**
 * @file
 * Input-load traces for the dynamic-behavior experiments (Fig 8).
 *
 * A LoadPattern maps simulated time to offered load, expressed as a
 * fraction of the service's calibrated max QPS. Three shapes cover
 * the paper's experiments: constant load (Figs 5-7, 8b), a diurnal
 * sine sweep (Fig 8a), and piecewise steps (Fig 8c and the power-cap
 * trace of Fig 8b reused for budgets).
 */

#ifndef CUTTLESYS_LCSIM_LOAD_PATTERN_HH
#define CUTTLESYS_LCSIM_LOAD_PATTERN_HH

#include <utility>
#include <vector>

namespace cuttlesys {

/** Time-varying load (or budget) trace; values are fractions. */
class LoadPattern
{
  public:
    /** Constant fraction for all time. */
    static LoadPattern constant(double fraction);

    /**
     * Diurnal sine: fraction oscillates between @p lo and @p hi with
     * the given @p period (seconds), starting at the minimum.
     */
    static LoadPattern diurnal(double lo, double hi, double period);

    /**
     * Piecewise-constant steps: @p steps is a list of (start time,
     * fraction), sorted by time; the value before the first step is
     * the first step's fraction.
     */
    static LoadPattern
    steps(std::vector<std::pair<double, double>> steps);

    /**
     * The same trace delayed by @p dt seconds: the shifted pattern at
     * time t reads the base pattern at t - dt. Fleet nodes use this
     * to phase-stagger one shared diurnal shape across replicas.
     */
    LoadPattern shifted(double dt) const;

    /**
     * The same trace with every value multiplied by @p factor
     * (>= 0). Composes with shifted(); transforms accumulate.
     */
    LoadPattern scaled(double factor) const;

    /** Fraction at time @p t (seconds). */
    double at(double t) const;

  private:
    enum class Kind { Constant, Diurnal, Steps };

    LoadPattern(Kind kind) : kind_(kind) {}

    double baseAt(double t) const;

    Kind kind_;
    double lo_ = 0.0;
    double hi_ = 0.0;
    double period_ = 1.0;
    double timeShift_ = 0.0;
    double valueScale_ = 1.0;
    std::vector<std::pair<double, double>> steps_;
};

} // namespace cuttlesys

#endif // CUTTLESYS_LCSIM_LOAD_PATTERN_HH
