/**
 * @file
 * Named, reusable scenario definitions for the examples and the
 * fleet simulator.
 *
 * The "compressed day" is the repo's canonical dynamic-behavior
 * trace: one datacenter day squeezed into 4 simulated seconds (40
 * decision quanta), with a diurnal load wave and a power budget that
 * dips during the afternoon peak-price window. It was originally
 * hard-coded in examples/diurnal_datacenter.cpp; extracting it here
 * lets fleet_sim phase-stagger the identical shape across node
 * replicas instead of carrying a diverging copy.
 */

#ifndef CUTTLESYS_LCSIM_SCENARIOS_HH
#define CUTTLESYS_LCSIM_SCENARIOS_HH

#include <cstddef>

#include "lcsim/load_pattern.hh"

namespace cuttlesys {

/**
 * One datacenter day compressed to a few simulated seconds.
 *
 * Load rides a diurnal sine from @ref loadTrough to @ref loadPeak
 * over @ref daySeconds; the power budget is @ref nightBudgetFrac of
 * the system max except during the afternoon peak-price window
 * [@ref peakWindowStartSec, @ref peakWindowEndSec), where it dips to
 * @ref peakBudgetFrac.
 */
struct CompressedDayScenario
{
    double daySeconds = 4.0;
    double loadTrough = 0.15;
    double loadPeak = 0.95;
    double nightBudgetFrac = 0.85;
    double peakBudgetFrac = 0.60;
    double peakWindowStartSec = 1.5;
    double peakWindowEndSec = 3.0;

    /** Decision quanta in one day at the given quantum length. */
    std::size_t quanta(double timesliceSec) const;

    /**
     * The diurnal load trace, optionally phase-shifted by
     * @p phaseShiftSec (fleet replicas stagger their peaks) and
     * amplitude-scaled by @p scale.
     */
    LoadPattern loadPattern(double phaseShiftSec = 0.0,
                            double scale = 1.0) const;

    /** The night/peak/evening budget steps, as budget fractions. */
    LoadPattern powerPattern() const;
};

} // namespace cuttlesys

#endif // CUTTLESYS_LCSIM_SCENARIOS_HH
