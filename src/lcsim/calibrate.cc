#include "lcsim/calibrate.hh"

#include <algorithm>

#include "common/logging.hh"
#include "config/job_config.hh"
#include "lcsim/queue_sim.hh"
#include "model/core_model.hh"

namespace cuttlesys {

namespace {

/** Reference configuration: widest core, largest cache allocation. */
JobConfig
referenceConfig()
{
    return JobConfig(CoreConfig::widest(), kNumCacheAllocs - 1);
}

} // namespace

double
measureTailAtLoad(const AppProfile &app, double qps,
                  const SystemParams &params, const MaxQpsOptions &opts)
{
    CS_ASSERT(app.isLatencyCritical(),
              "calibration is only meaningful for LC apps");
    const double ips = coreIps(app, referenceConfig(), params);
    LcQueueSim sim(app, opts.referenceCores, ips, opts.seed);
    sim.setLoadQps(qps);
    sim.run(opts.warmupSec);
    sim.clearWindow();
    sim.run(opts.measureSec);
    if (sim.completedInWindow() == 0)
        return 0.0;
    return sim.tailLatency(99.0);
}

double
findMaxQps(const AppProfile &app, const SystemParams &params,
           const MaxQpsOptions &opts)
{
    const double ips = coreIps(app, referenceConfig(), params);
    // Service capacity: requests/s the pool can complete flat out.
    const double capacity = static_cast<double>(opts.referenceCores) *
        ips / app.requestInstructions();

    double lo = capacity * 0.05;
    double hi = capacity * 1.2;
    const double unloaded_p99 =
        measureTailAtLoad(app, lo, params, opts);
    CS_ASSERT(unloaded_p99 <= app.qosSeconds(),
              app.name, " violates QoS even at 5% capacity; the "
              "profile's qosMs is unachievable");
    const double bar =
        std::min(app.qosSeconds(), opts.kneeFactor * unloaded_p99);

    for (std::size_t i = 0; i < opts.iterations; ++i) {
        const double mid = 0.5 * (lo + hi);
        const double p99 = measureTailAtLoad(app, mid, params, opts);
        if (p99 <= bar)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

std::vector<double>
calibrateMaxQps(std::vector<AppProfile> &apps, const SystemParams &params,
                const MaxQpsOptions &opts)
{
    std::vector<double> loads;
    loads.reserve(apps.size());
    for (auto &app : apps) {
        app.maxQps = findMaxQps(app, params, opts);
        loads.push_back(app.maxQps);
    }
    return loads;
}

} // namespace cuttlesys
