#include "lcsim/mgk_approx.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace cuttlesys {

namespace {

/**
 * Inverse standard-normal CDF (Acklam's rational approximation,
 * |relative error| < 1.15e-9 over (0, 1)).
 */
double
inverseNormalCdf(double p)
{
    CS_ASSERT(p > 0.0 && p < 1.0, "quantile probability out of range");
    static const double a[] = {-3.969683028665376e+01,
                               2.209460984245205e+02,
                               -2.759285104469687e+02,
                               1.383577518672690e+02,
                               -3.066479806614716e+01,
                               2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01,
                               1.615858368580409e+02,
                               -1.556989798598866e+02,
                               6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03,
                               -3.223964580411365e-01,
                               -2.400758277161838e+00,
                               -2.549732539343734e+00,
                               4.374664141464968e+00,
                               2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03,
                               3.224671290700398e-01,
                               2.445134137142996e+00,
                               3.754408661907416e+00};
    constexpr double p_low = 0.02425;

    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                 c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p > 1.0 - p_low) {
        const double q = std::sqrt(-2.0 * std::log(1.0 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q +
                  c[4]) * q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
            r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
            r + 1.0);
}

/** Lognormal quantile given the distribution's mean and CV. */
double
lognormalQuantile(double mean, double cv, double p)
{
    if (cv <= 0.0)
        return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * inverseNormalCdf(p));
}

} // namespace

double
mgkUtilization(const MgkSystem &system)
{
    CS_ASSERT(system.servers > 0, "need at least one server");
    CS_ASSERT(system.meanServiceSec > 0.0, "service time must be > 0");
    return system.arrivalRate * system.meanServiceSec /
           static_cast<double>(system.servers);
}

double
erlangC(std::size_t servers, double rho)
{
    CS_ASSERT(servers > 0, "need at least one server");
    CS_ASSERT(rho >= 0.0 && rho < 1.0,
              "Erlang-C requires rho in [0, 1), got ", rho);
    // Erlang-B via the stable recurrence, then convert to Erlang-C.
    const double a = rho * static_cast<double>(servers);
    double blocking = 1.0;
    for (std::size_t n = 1; n <= servers; ++n) {
        blocking = a * blocking /
                   (static_cast<double>(n) + a * blocking);
    }
    return blocking / (1.0 - rho * (1.0 - blocking));
}

double
mgkMeanWait(const MgkSystem &system)
{
    const double rho = mgkUtilization(system);
    if (rho >= 1.0)
        return std::numeric_limits<double>::infinity();
    const double c = erlangC(system.servers, rho);
    const double mmk_wait = c * system.meanServiceSec /
        (static_cast<double>(system.servers) * (1.0 - rho));
    // Lee-Longton two-moment correction for general service times.
    const double c2 = system.serviceCv * system.serviceCv;
    return mmk_wait * (1.0 + c2) / 2.0;
}

double
mgkResponsePercentile(const MgkSystem &system, double pct)
{
    CS_ASSERT(pct > 0.0 && pct < 100.0, "percentile out of range");
    const double rho = mgkUtilization(system);
    if (rho >= 1.0)
        return std::numeric_limits<double>::infinity();

    const double service_q =
        lognormalQuantile(system.meanServiceSec, system.serviceCv,
                          pct / 100.0);

    // Waiting time: zero with probability 1 - C; conditional wait
    // approximately exponential with mean Wq / C.
    const double c = erlangC(system.servers, rho);
    const double tail_prob = 1.0 - pct / 100.0;
    double wait_q = 0.0;
    if (tail_prob < c) {
        const double conditional_mean = mgkMeanWait(system) / c;
        wait_q = conditional_mean * std::log(c / tail_prob);
    }
    // Additive quantile combination: a slight overestimate (the two
    // components rarely peak together), which is the safe direction
    // for a p99 estimator.
    return service_q + wait_q;
}

double
approxTailLatency(const AppProfile &app, double qps,
                  std::size_t servers, double ips_per_core, double pct)
{
    CS_ASSERT(app.isLatencyCritical(),
              "tail approximation needs an LC profile");
    CS_ASSERT(ips_per_core > 0.0, "service rate must be positive");
    MgkSystem system;
    system.arrivalRate = qps;
    system.servers = servers;
    system.meanServiceSec = app.requestInstructions() / ips_per_core;
    system.serviceCv = app.requestCv;
    return mgkResponsePercentile(system, pct);
}

} // namespace cuttlesys
