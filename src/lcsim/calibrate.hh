/**
 * @file
 * Max-QPS calibration (Section VII-A).
 *
 * The paper finds each service's maximum sustainable load by
 * simulating it on a 16-core system and raising QPS until saturation,
 * then using the knee point before saturation. We define the knee
 * operationally as the largest load at which the measured p99 still
 * meets the service's QoS target on the reference configuration
 * (widest cores, largest cache allocation); percent loads elsewhere in
 * the evaluation are fractions of this value.
 */

#ifndef CUTTLESYS_LCSIM_CALIBRATE_HH
#define CUTTLESYS_LCSIM_CALIBRATE_HH

#include <cstdint>
#include <vector>

#include "apps/app_profile.hh"
#include "config/params.hh"

namespace cuttlesys {

/** Options for the knee-point search. */
struct MaxQpsOptions
{
    std::size_t referenceCores = 16; //!< paper's calibration system
    double warmupSec = 0.5;
    double measureSec = 2.0;
    std::size_t iterations = 18;     //!< bisection steps
    std::uint64_t seed = 42;
    /**
     * Knee definition: the largest load whose p99 stays below
     * kneeFactor x the unloaded p99 (and below QoS). The paper uses
     * "the knee-point before saturation to avoid the instability of
     * saturation" — a curvature criterion, not a QoS one; p99
     * doubling over its unloaded value marks where the queueing term
     * takes over.
     */
    double kneeFactor = 1.5;
};

/**
 * Measure p99 latency (seconds) of @p app at @p qps on the reference
 * system, after warmup.
 */
double measureTailAtLoad(const AppProfile &app, double qps,
                         const SystemParams &params,
                         const MaxQpsOptions &opts = {});

/**
 * Knee-point load: the largest QPS whose measured p99 stays below
 * both the QoS target and kneeFactor x the unloaded p99 on the
 * reference system.
 */
double findMaxQps(const AppProfile &app, const SystemParams &params,
                  const MaxQpsOptions &opts = {});

/**
 * Fill in AppProfile::maxQps for every profile in @p apps.
 * @return the calibrated loads, in the order of @p apps.
 */
std::vector<double> calibrateMaxQps(std::vector<AppProfile> &apps,
                                    const SystemParams &params,
                                    const MaxQpsOptions &opts = {});

} // namespace cuttlesys

#endif // CUTTLESYS_LCSIM_CALIBRATE_HH
