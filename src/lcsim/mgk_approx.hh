/**
 * @file
 * Analytical M/G/k tail-latency approximation.
 *
 * The discrete-event simulator is the ground truth for tail latency in
 * this repository, but an analytical estimate is valuable twice over:
 * it cross-validates the DES (tests compare the two across loads,
 * server counts and service variability), and it gives callers an
 * O(1) estimate where running the DES would be wasteful (capacity
 * planning, documentation examples, quick what-ifs).
 *
 * Model: Poisson arrivals at rate lambda, k servers, i.i.d. service
 * times with mean s and squared coefficient of variation c2 (the
 * lognormal work model of AppProfile gives c2 = requestCv^2). The
 * waiting time uses the standard M/G/k two-moment approximation
 * (Lee-Longton): the M/M/k Erlang-C wait scaled by (1 + c2) / 2,
 * with the conditional wait treated as exponential. The response-time
 * quantile combines the service-time quantile with the waiting-time
 * quantile; for the high percentiles the runtime cares about this
 * lands within ~20-30% of the DES except deep in saturation.
 */

#ifndef CUTTLESYS_LCSIM_MGK_APPROX_HH
#define CUTTLESYS_LCSIM_MGK_APPROX_HH

#include <cstddef>

#include "apps/app_profile.hh"

namespace cuttlesys {

/** Inputs of the approximation. */
struct MgkSystem
{
    double arrivalRate = 0.0;   //!< lambda, requests/s
    std::size_t servers = 1;    //!< k
    double meanServiceSec = 0.0; //!< s
    double serviceCv = 0.0;     //!< coefficient of variation of service
};

/** Offered utilization rho = lambda * s / k. */
double mgkUtilization(const MgkSystem &system);

/**
 * Erlang-C: probability an arriving request must queue in an M/M/k
 * system at the given utilization. @pre rho < 1.
 */
double erlangC(std::size_t servers, double rho);

/** Mean waiting time (seconds) under the two-moment approximation. */
double mgkMeanWait(const MgkSystem &system);

/**
 * Approximate response-time percentile (seconds), pct in (0, 100).
 * Returns infinity at or beyond saturation.
 */
double mgkResponsePercentile(const MgkSystem &system, double pct);

/**
 * Convenience: build the system from an LC profile and a per-core
 * service rate, then return the approximate p99.
 */
double approxTailLatency(const AppProfile &app, double qps,
                         std::size_t servers, double ips_per_core,
                         double pct = 99.0);

} // namespace cuttlesys

#endif // CUTTLESYS_LCSIM_MGK_APPROX_HH
