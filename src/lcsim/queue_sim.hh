/**
 * @file
 * Discrete-event queueing simulator for latency-critical services.
 *
 * Models one TailBench-like service as an FCFS multi-server queue:
 * Poisson request arrivals at a target QPS, per-request work drawn
 * lognormal around the profile's mean, service rate set by the core
 * model (instructions per second of the currently assigned core/cache
 * configuration). This is the component that turns "configuration
 * choice" into "tail latency", reproducing the characteristic shape
 * of Fig 1: flat tails at low load, a hockey stick as the narrowest
 * configurations saturate.
 *
 * The simulator is stateful across calls so the runtime can carry
 * queue backlogs between 100 ms timeslices (a QoS violation in slice
 * k leaves a backlog slice k+1 must also absorb, as in the paper's
 * Fig 8 dynamics).
 */

#ifndef CUTTLESYS_LCSIM_QUEUE_SIM_HH
#define CUTTLESYS_LCSIM_QUEUE_SIM_HH

#include <cstdint>
#include <queue>
#include <vector>

#include "apps/app_profile.hh"
#include "common/rng.hh"

namespace cuttlesys {

/** One service instance (a cluster of cores serving one LC app). */
class LcQueueSim
{
  public:
    /**
     * @param profile the LC application served
     * @param num_servers cores assigned to the service
     * @param ips_per_core service rate of each core (instr/s)
     * @param seed RNG seed (deterministic runs)
     */
    LcQueueSim(AppProfile profile, std::size_t num_servers,
               double ips_per_core, std::uint64_t seed);

    /** Change the offered load (takes effect immediately). */
    void setLoadQps(double qps);

    /**
     * Change the per-core service rate (a reconfiguration decision).
     * Requests already in service finish at their original rate.
     */
    void setIpsPerCore(double ips);

    /** Grow/shrink the server pool (core relocation). */
    void setServers(std::size_t num_servers);

    /** Advance simulated time by @p duration seconds. */
    void run(double duration);

    /** Completions recorded since the last clearWindow(). */
    std::size_t completedInWindow() const { return window_.size(); }

    /**
     * Percentile latency (seconds) over the current window.
     * Returns 0 when the window is empty.
     */
    double tailLatency(double pct = 99.0) const;

    /** Mean latency (seconds) over the current window; 0 if empty. */
    double meanLatency() const;

    /** Busy-core fraction integrated over the window. */
    double utilization() const;

    /** Requests currently queued (excluding those in service). */
    std::size_t backlog() const
    {
        return pending_.size() - pendingHead_;
    }

    /** Requests currently in service. */
    std::size_t inService() const { return inService_.size(); }

    /** Reset the measurement window (call per timeslice). */
    void clearWindow();

    /** Current simulated time, seconds. */
    double now() const { return now_; }

    const AppProfile &profile() const { return profile_; }
    std::size_t servers() const { return numServers_; }
    double loadQps() const { return qps_; }
    double ipsPerCore() const { return ips_; }

  private:
    struct Pending
    {
        double arrival;       //!< arrival timestamp, s
        double instructions;  //!< work, instructions
    };

    /** Start service for queued requests while cores are free. */
    void dispatch();

    /** Draw the next interarrival gap and schedule it. */
    void scheduleNextArrival();

    AppProfile profile_;
    std::size_t numServers_;
    double ips_;
    double qps_ = 0.0;
    Rng rng_;

    double now_ = 0.0;
    double nextArrival_ = -1.0; //!< < 0 means "no arrival scheduled"

    /**
     * FCFS queue as a vector plus a consumed-prefix index. A deque
     * churns map/node allocations under sustained push/pop; the
     * vector reaches its high-water capacity once and then the whole
     * arrival/completion loop is heap-free (the steady-state
     * zero-alloc gate covers a full fleet node, LC queue included).
     * Order is preserved exactly, so the event stream — and with it
     * every decision trace — is bitwise unchanged.
     */
    std::vector<Pending> pending_;
    std::size_t pendingHead_ = 0;
    /** Min-heap of (completion time, arrival time) for busy cores. */
    std::priority_queue<std::pair<double, double>,
                        std::vector<std::pair<double, double>>,
                        std::greater<>> inService_;

    std::vector<double> window_;   //!< completed latencies, s
    mutable std::vector<double> tailScratch_; //!< percentile sort buf
    double windowStart_ = 0.0;
    double busyTime_ = 0.0;        //!< integrated busy core-seconds
    double lastAccounted_ = 0.0;   //!< time up to which busyTime_ counts
};

} // namespace cuttlesys

#endif // CUTTLESYS_LCSIM_QUEUE_SIM_HH
