#include "lcsim/load_pattern.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cuttlesys {

LoadPattern
LoadPattern::constant(double fraction)
{
    CS_ASSERT(fraction >= 0.0, "negative load fraction");
    LoadPattern p(Kind::Constant);
    p.lo_ = p.hi_ = fraction;
    return p;
}

LoadPattern
LoadPattern::diurnal(double lo, double hi, double period)
{
    CS_ASSERT(lo >= 0.0 && hi >= lo, "bad diurnal bounds");
    CS_ASSERT(period > 0.0, "period must be positive");
    LoadPattern p(Kind::Diurnal);
    p.lo_ = lo;
    p.hi_ = hi;
    p.period_ = period;
    return p;
}

LoadPattern
LoadPattern::steps(std::vector<std::pair<double, double>> steps)
{
    CS_ASSERT(!steps.empty(), "steps pattern needs at least one step");
    CS_ASSERT(std::is_sorted(steps.begin(), steps.end(),
                             [](const auto &a, const auto &b) {
                                 return a.first < b.first;
                             }),
              "steps must be sorted by time");
    LoadPattern p(Kind::Steps);
    p.steps_ = std::move(steps);
    return p;
}

LoadPattern
LoadPattern::shifted(double dt) const
{
    LoadPattern p = *this;
    p.timeShift_ += dt;
    return p;
}

LoadPattern
LoadPattern::scaled(double factor) const
{
    CS_ASSERT(factor >= 0.0, "negative load scale");
    LoadPattern p = *this;
    p.valueScale_ *= factor;
    return p;
}

double
LoadPattern::at(double t) const
{
    return valueScale_ * baseAt(t - timeShift_);
}

double
LoadPattern::baseAt(double t) const
{
    switch (kind_) {
      case Kind::Constant:
        return lo_;
      case Kind::Diurnal: {
          // Starts at the minimum (phase -pi/2).
          const double phase = 2.0 * M_PI * t / period_ - M_PI / 2.0;
          return lo_ + (hi_ - lo_) * 0.5 * (1.0 + std::sin(phase));
      }
      case Kind::Steps: {
          double value = steps_.front().second;
          for (const auto &[start, fraction] : steps_) {
              if (t >= start)
                  value = fraction;
              else
                  break;
          }
          return value;
      }
    }
    panic("unreachable load-pattern kind");
}

} // namespace cuttlesys
