#include "lcsim/queue_sim.hh"

#include <algorithm>
#include <cstddef>

#include "common/logging.hh"
#include "common/stats.hh"

namespace cuttlesys {

LcQueueSim::LcQueueSim(AppProfile profile, std::size_t num_servers,
                       double ips_per_core, std::uint64_t seed)
    : profile_(std::move(profile)), numServers_(num_servers),
      ips_(ips_per_core), rng_(seed)
{
    CS_ASSERT(numServers_ > 0, "LC service needs at least one core");
    CS_ASSERT(ips_ > 0.0, "service rate must be positive");
}

void
LcQueueSim::setLoadQps(double qps)
{
    CS_ASSERT(qps >= 0.0, "negative load");
    qps_ = qps;
    if (qps_ > 0.0)
        nextArrival_ = now_ + rng_.exponential(qps_);
    else
        nextArrival_ = -1.0;
}

void
LcQueueSim::setIpsPerCore(double ips)
{
    CS_ASSERT(ips > 0.0, "service rate must be positive");
    ips_ = ips;
}

void
LcQueueSim::setServers(std::size_t num_servers)
{
    CS_ASSERT(num_servers > 0, "LC service needs at least one core");
    numServers_ = num_servers;
    dispatch();
}

void
LcQueueSim::scheduleNextArrival()
{
    if (qps_ > 0.0)
        nextArrival_ = now_ + rng_.exponential(qps_);
    else
        nextArrival_ = -1.0;
}

void
LcQueueSim::dispatch()
{
    while (pendingHead_ < pending_.size() &&
           inService_.size() < numServers_) {
        const Pending req = pending_[pendingHead_];
        ++pendingHead_;
        const double service = req.instructions / ips_;
        inService_.emplace(now_ + service, req.arrival);
    }
    if (pendingHead_ == pending_.size()) {
        // Fully drained: recycle the buffer (capacity is kept).
        pending_.clear();
        pendingHead_ = 0;
    } else if (pendingHead_ >= 64 &&
               pendingHead_ * 2 >= pending_.size()) {
        // Mostly-consumed prefix on a queue that never quite drains:
        // shift the live tail down in place (no allocation) so the
        // buffer cannot grow without bound.
        pending_.erase(pending_.begin(),
                       pending_.begin() +
                           static_cast<std::ptrdiff_t>(pendingHead_));
        pendingHead_ = 0;
    }
}

void
LcQueueSim::run(double duration)
{
    CS_ASSERT(duration >= 0.0, "negative run duration");
    const double end = now_ + duration;

    // Amortized-headroom growth for the event buffers: reserve twice
    // this window's expected arrivals up front. push_back's exact
    // doubling would still occasionally realloc quanta later when a
    // noisy window sets a new high-water; with 2x headroom the
    // buffers settle during warm-up and the steady state stays
    // heap-free.
    if (qps_ > 0.0) {
        const std::size_t want =
            static_cast<std::size_t>(2.0 * qps_ * duration) + 64;
        if (pending_.capacity() < want)
            pending_.reserve(want);
        if (window_.capacity() < window_.size() + want)
            window_.reserve(window_.size() + want);
    }

    while (true) {
        // Next event: arrival or earliest completion.
        double t_event = end;
        enum class Kind { None, Arrival, Completion } kind = Kind::None;

        if (nextArrival_ >= 0.0 && nextArrival_ < t_event) {
            t_event = nextArrival_;
            kind = Kind::Arrival;
        }
        if (!inService_.empty() && inService_.top().first < t_event) {
            t_event = inService_.top().first;
            kind = Kind::Completion;
        }

        // Integrate busy time up to the event (or the horizon).
        const double busy_cores = static_cast<double>(
            std::min(inService_.size(), numServers_));
        busyTime_ += busy_cores * (t_event - lastAccounted_);
        lastAccounted_ = t_event;
        now_ = t_event;

        if (kind == Kind::None)
            break;

        if (kind == Kind::Arrival) {
            Pending req;
            req.arrival = now_;
            req.instructions = rng_.lognormalMeanCv(
                profile_.requestInstructions(), profile_.requestCv);
            pending_.push_back(req);
            dispatch();
            scheduleNextArrival();
        } else {
            const auto [completion, arrival] = inService_.top();
            inService_.pop();
            window_.push_back(completion - arrival);
            dispatch();
        }
    }
}

double
LcQueueSim::tailLatency(double pct) const
{
    if (window_.empty())
        return 0.0;
    return percentile(window_, pct, tailScratch_);
}

double
LcQueueSim::meanLatency() const
{
    if (window_.empty())
        return 0.0;
    return mean(window_);
}

double
LcQueueSim::utilization() const
{
    const double elapsed = now_ - windowStart_;
    if (elapsed <= 0.0)
        return 0.0;
    return busyTime_ / (static_cast<double>(numServers_) * elapsed);
}

void
LcQueueSim::clearWindow()
{
    window_.clear();
    windowStart_ = now_;
    busyTime_ = 0.0;
    lastAccounted_ = now_;
}

} // namespace cuttlesys
