#include "lcsim/queue_sim.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"

namespace cuttlesys {

LcQueueSim::LcQueueSim(AppProfile profile, std::size_t num_servers,
                       double ips_per_core, std::uint64_t seed)
    : profile_(std::move(profile)), numServers_(num_servers),
      ips_(ips_per_core), rng_(seed)
{
    CS_ASSERT(numServers_ > 0, "LC service needs at least one core");
    CS_ASSERT(ips_ > 0.0, "service rate must be positive");
}

void
LcQueueSim::setLoadQps(double qps)
{
    CS_ASSERT(qps >= 0.0, "negative load");
    qps_ = qps;
    if (qps_ > 0.0)
        nextArrival_ = now_ + rng_.exponential(qps_);
    else
        nextArrival_ = -1.0;
}

void
LcQueueSim::setIpsPerCore(double ips)
{
    CS_ASSERT(ips > 0.0, "service rate must be positive");
    ips_ = ips;
}

void
LcQueueSim::setServers(std::size_t num_servers)
{
    CS_ASSERT(num_servers > 0, "LC service needs at least one core");
    numServers_ = num_servers;
    dispatch();
}

void
LcQueueSim::scheduleNextArrival()
{
    if (qps_ > 0.0)
        nextArrival_ = now_ + rng_.exponential(qps_);
    else
        nextArrival_ = -1.0;
}

void
LcQueueSim::dispatch()
{
    while (!pending_.empty() && inService_.size() < numServers_) {
        const Pending req = pending_.front();
        pending_.pop_front();
        const double service = req.instructions / ips_;
        inService_.emplace(now_ + service, req.arrival);
    }
}

void
LcQueueSim::run(double duration)
{
    CS_ASSERT(duration >= 0.0, "negative run duration");
    const double end = now_ + duration;

    while (true) {
        // Next event: arrival or earliest completion.
        double t_event = end;
        enum class Kind { None, Arrival, Completion } kind = Kind::None;

        if (nextArrival_ >= 0.0 && nextArrival_ < t_event) {
            t_event = nextArrival_;
            kind = Kind::Arrival;
        }
        if (!inService_.empty() && inService_.top().first < t_event) {
            t_event = inService_.top().first;
            kind = Kind::Completion;
        }

        // Integrate busy time up to the event (or the horizon).
        const double busy_cores = static_cast<double>(
            std::min(inService_.size(), numServers_));
        busyTime_ += busy_cores * (t_event - lastAccounted_);
        lastAccounted_ = t_event;
        now_ = t_event;

        if (kind == Kind::None)
            break;

        if (kind == Kind::Arrival) {
            Pending req;
            req.arrival = now_;
            req.instructions = rng_.lognormalMeanCv(
                profile_.requestInstructions(), profile_.requestCv);
            pending_.push_back(req);
            dispatch();
            scheduleNextArrival();
        } else {
            const auto [completion, arrival] = inService_.top();
            inService_.pop();
            window_.push_back(completion - arrival);
            dispatch();
        }
    }
}

double
LcQueueSim::tailLatency(double pct) const
{
    if (window_.empty())
        return 0.0;
    return percentile(window_, pct);
}

double
LcQueueSim::meanLatency() const
{
    if (window_.empty())
        return 0.0;
    return mean(window_);
}

double
LcQueueSim::utilization() const
{
    const double elapsed = now_ - windowStart_;
    if (elapsed <= 0.0)
        return 0.0;
    return busyTime_ / (static_cast<double>(numServers_) * elapsed);
}

void
LcQueueSim::clearWindow()
{
    window_.clear();
    windowStart_ = now_;
    busyTime_ = 0.0;
    lastAccounted_ = now_;
}

} // namespace cuttlesys
