#include "apps/mix.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cuttlesys {

std::vector<AppProfile>
makeBatchMix(const std::vector<AppProfile> &pool, std::size_t size,
             std::uint64_t seed)
{
    CS_ASSERT(!pool.empty(), "cannot build a mix from an empty pool");
    Rng rng(seed);
    std::vector<AppProfile> mix;
    mix.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
        const auto pick = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1));
        AppProfile app = pool[pick];
        // Distinguish repeated picks: unique residual stream per slot.
        app.seed = app.seed * 0x100000001b3ULL + i + seed;
        mix.push_back(std::move(app));
    }
    return mix;
}

std::vector<WorkloadMix>
makeEvaluationMixes(const std::vector<AppProfile> &lc_apps,
                    const std::vector<AppProfile> &pool,
                    std::size_t mixes_per_lc, std::size_t mix_size,
                    std::uint64_t seed)
{
    std::vector<WorkloadMix> mixes;
    mixes.reserve(lc_apps.size() * mixes_per_lc);
    for (std::size_t li = 0; li < lc_apps.size(); ++li) {
        for (std::size_t mi = 0; mi < mixes_per_lc; ++mi) {
            WorkloadMix mix;
            std::ostringstream name;
            name << lc_apps[li].name << "/mix";
            name.fill('0');
            name.width(2);
            name << mi;
            mix.name = name.str();
            mix.lc = lc_apps[li];
            mix.batch = makeBatchMix(pool, mix_size,
                                     seed + li * 1000 + mi);
            mixes.push_back(std::move(mix));
        }
    }
    return mixes;
}

} // namespace cuttlesys
