/**
 * @file
 * The application gallery: profiles standing in for the paper's
 * workloads.
 *
 * Batch: the 28 SPEC CPU2006 benchmarks listed in Section VII-A.
 * Latency-critical: the 5 TailBench services (xapian, masstree,
 * imgdnn, moses, silo).
 *
 * Parameter values are hand-calibrated to the qualitative behavior the
 * paper (and the SPEC/TailBench characterization literature) reports:
 * e.g. mcf/lbm/libquantum are memory-bound with steep miss-ratio
 * curves, povray/gamess are compute-bound, xapian's tail latency is
 * load-store-bound, moses is front-end-bound (Fig 1).
 */

#ifndef CUTTLESYS_APPS_GALLERY_HH
#define CUTTLESYS_APPS_GALLERY_HH

#include <cstddef>
#include <vector>

#include "apps/app_profile.hh"

namespace cuttlesys {

/** All 28 SPEC CPU2006-like batch profiles, fixed order. */
std::vector<AppProfile> specGallery();

/** All 5 TailBench-like latency-critical profiles, fixed order. */
std::vector<AppProfile> tailbenchGallery();

/**
 * Look up a profile by name in either gallery.
 * @throws FatalError for unknown names.
 */
AppProfile profileByName(const std::string &name);

/**
 * The canonical train/test split of Section VII-A: @p train_count
 * (default 16) SPEC apps selected for offline characterization; the
 * remaining apps form the pool test mixes are drawn from.
 *
 * The selection is a deterministic pseudo-random function of @p seed,
 * mirroring the paper's "randomly selected 16".
 */
struct TrainTestSplit
{
    std::vector<AppProfile> train;
    std::vector<AppProfile> test;
};

TrainTestSplit splitSpecGallery(std::size_t train_count = 16,
                                std::uint64_t seed = 2020);

} // namespace cuttlesys

#endif // CUTTLESYS_APPS_GALLERY_HH
