#include "apps/gallery.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace cuttlesys {

namespace {

/** Compact row for the batch-profile table below. */
struct BatchRow
{
    const char *name;
    double cpi_base;
    double fe_sens, be_sens, ls_sens;
    double fe_exp, be_exp, ls_exp;
    double apki;
    double mr_ceil, mr_floor, mr_lambda;
    double overlap;
    double activity;
};

/**
 * SPEC CPU2006 stand-in parameters.
 *
 * Memory-bound codes (mcf, lbm, milc, libquantum, omnetpp, soplex,
 * GemsFDTD, leslie3d, bwaves, sphinx3, xalancbmk) get high apki, steep
 * MRCs and low compute sensitivity; compute-bound codes (gamess,
 * povray, namd, calculix, h264ref, hmmer, gromacs) the reverse; the
 * branchy integer codes (perlbench, sjeng, gobmk, gcc) are front-end
 * heavy. Activity scales dynamic power (FP-heavy codes run hotter).
 */
constexpr BatchRow kSpecRows[] = {
    //                 cpi   fe    be    ls   feE  beE  lsE  apki mrC  mrF  lam  ovl  act
    {"perlbench",      0.34, 0.152, 0.064, 0.048, 1.5, 1.2, 1.1, 4.0, 0.45, 0.06, 1.6, 0.35, 0.95},
    {"bzip2",          0.36, 0.08, 0.088, 0.08, 1.3, 1.3, 1.2, 8.0, 0.55, 0.12, 2.2, 0.40, 0.90},
    {"gcc",            0.38, 0.136, 0.072, 0.064, 1.4, 1.2, 1.2, 9.0, 0.60, 0.10, 2.6, 0.40, 0.92},
    {"mcf",            0.42, 0.032, 0.04, 0.104, 1.1, 1.1, 1.4, 34.0, 0.82, 0.34, 3.2, 0.52, 0.70},
    {"cactusADM",      0.40, 0.04, 0.12, 0.088, 1.1, 1.4, 1.3, 14.0, 0.58, 0.16, 2.8, 0.46, 1.15},
    {"namd",           0.30, 0.048, 0.16, 0.048, 1.1, 1.5, 1.1, 2.5, 0.35, 0.05, 1.4, 0.30, 1.20},
    {"soplex",         0.38, 0.048, 0.064, 0.096, 1.1, 1.2, 1.3, 22.0, 0.70, 0.22, 3.0, 0.48, 0.85},
    {"hmmer",          0.30, 0.064, 0.168, 0.04, 1.2, 1.5, 1.1, 2.0, 0.30, 0.04, 1.2, 0.28, 1.10},
    {"libquantum",     0.34, 0.024, 0.048, 0.088, 1.0, 1.1, 1.3, 28.0, 0.88, 0.62, 6.0, 0.55, 0.75},
    {"lbm",            0.36, 0.024, 0.072, 0.112, 1.0, 1.2, 1.4, 30.0, 0.85, 0.50, 5.0, 0.58, 0.95},
    {"bwaves",         0.36, 0.032, 0.096, 0.096, 1.0, 1.3, 1.3, 20.0, 0.72, 0.30, 4.0, 0.50, 1.05},
    {"zeusmp",         0.34, 0.04, 0.112, 0.072, 1.1, 1.3, 1.2, 12.0, 0.55, 0.14, 2.6, 0.44, 1.10},
    {"leslie3d",       0.36, 0.032, 0.104, 0.088, 1.0, 1.3, 1.3, 18.0, 0.66, 0.22, 3.4, 0.48, 1.08},
    {"milc",           0.38, 0.024, 0.08, 0.096, 1.0, 1.2, 1.3, 26.0, 0.78, 0.38, 4.2, 0.52, 0.92},
    {"h264ref",        0.30, 0.104, 0.136, 0.048, 1.3, 1.4, 1.1, 3.5, 0.40, 0.06, 1.6, 0.32, 1.12},
    {"sjeng",          0.34, 0.16, 0.08, 0.04, 1.5, 1.2, 1.0, 3.0, 0.42, 0.08, 1.8, 0.30, 0.88},
    {"GemsFDTD",       0.38, 0.032, 0.088, 0.104, 1.0, 1.2, 1.3, 24.0, 0.75, 0.30, 3.8, 0.52, 1.00},
    {"omnetpp",        0.40, 0.072, 0.048, 0.088, 1.2, 1.1, 1.3, 21.0, 0.74, 0.26, 3.0, 0.46, 0.78},
    {"xalancbmk",      0.38, 0.12, 0.056, 0.072, 1.4, 1.1, 1.2, 16.0, 0.64, 0.18, 2.6, 0.42, 0.82},
    {"sphinx3",        0.34, 0.056, 0.096, 0.08, 1.2, 1.3, 1.2, 15.0, 0.60, 0.16, 2.8, 0.44, 0.96},
    {"astar",          0.36, 0.064, 0.056, 0.088, 1.2, 1.1, 1.3, 12.0, 0.58, 0.18, 2.4, 0.42, 0.80},
    {"gromacs",        0.30, 0.048, 0.152, 0.048, 1.1, 1.4, 1.1, 4.0, 0.38, 0.06, 1.6, 0.32, 1.15},
    {"gamess",         0.28, 0.072, 0.176, 0.032, 1.2, 1.5, 1.0, 1.5, 0.25, 0.03, 1.0, 0.25, 1.18},
    {"gobmk",          0.34, 0.144, 0.072, 0.048, 1.5, 1.2, 1.1, 4.5, 0.44, 0.08, 1.8, 0.32, 0.86},
    {"povray",         0.28, 0.08, 0.168, 0.032, 1.2, 1.5, 1.0, 1.0, 0.22, 0.03, 1.0, 0.24, 1.16},
    {"specrand",       0.30, 0.04, 0.048, 0.04, 1.1, 1.1, 1.1, 0.8, 0.20, 0.04, 1.0, 0.22, 0.60},
    {"calculix",       0.30, 0.056, 0.16, 0.04, 1.1, 1.5, 1.1, 3.0, 0.34, 0.05, 1.4, 0.30, 1.14},
    {"wrf",            0.34, 0.048, 0.12, 0.064, 1.1, 1.3, 1.2, 10.0, 0.52, 0.12, 2.4, 0.42, 1.06},
};

/** Compact row for the latency-critical profile table below. */
struct LcRow
{
    const char *name;
    double cpi_base;
    double fe_sens, be_sens, ls_sens;
    double fe_exp, be_exp, ls_exp;
    double apki;
    double mr_ceil, mr_floor, mr_lambda;
    double overlap;
    double activity;
    double req_minstr;
    double req_cv;
    double qos_ms;
};

/**
 * TailBench stand-ins, tuned to Fig 1's findings:
 *  - xapian: tail latency dominated by the load-store queue (needs a
 *    six-way LS); least power at {2,2,6}.
 *  - imgdnn, silo, masstree: low latency once FE and LS are >= 4-way.
 *  - moses: primarily front-end bound; least power at {6,2,4}.
 * Request work is sized so the 16-core knee-point loads land near the
 * paper's max QPS (xapian 22k, masstree 17k, imgdnn 8k, moses 8k,
 * silo 24k).
 */
constexpr LcRow kTailbenchRows[] = {
    //            cpi   fe    be    ls   feE  beE  lsE  apki  mrC   mrF  lam  ovl  act   MI   cv   qos
    {"xapian",    0.36, 0.12, 0.10, 0.55, 1.1, 1.1, 1.7, 18.0, 0.62, 0.18, 2.6, 0.48, 0.85, 3.6, 0.9, 10.0},
    {"masstree",  0.32, 0.30, 0.10, 0.30, 1.4, 1.1, 1.4, 14.0, 0.55, 0.14, 2.2, 0.44, 0.80, 5.2, 0.6,  4.0},
    {"imgdnn",    0.28, 0.28, 0.26, 0.26, 1.4, 1.3, 1.4,  6.0, 0.40, 0.08, 1.8, 0.36, 1.10, 14.0, 0.4,  6.0},
    {"moses",     0.34, 0.48, 0.12, 0.16, 1.6, 1.1, 1.2,  8.0, 0.48, 0.10, 2.0, 0.38, 0.90, 12.0, 0.7, 12.0},
    {"silo",      0.30, 0.16, 0.12, 0.28, 1.2, 1.1, 1.3, 10.0, 0.50, 0.12, 2.0, 0.40, 0.78, 3.2, 0.5,  3.0},
};

AppProfile
fromBatchRow(const BatchRow &row, std::uint64_t seed)
{
    AppProfile p;
    p.name = row.name;
    p.cls = AppClass::Batch;
    p.cpiBase = row.cpi_base;
    p.feSens = row.fe_sens;
    p.beSens = row.be_sens;
    p.lsSens = row.ls_sens;
    p.feExp = row.fe_exp;
    p.beExp = row.be_exp;
    p.lsExp = row.ls_exp;
    p.apki = row.apki;
    p.mrCeil = row.mr_ceil;
    p.mrFloor = row.mr_floor;
    p.mrLambda = row.mr_lambda;
    p.memOverlap = row.overlap;
    p.activity = row.activity;
    p.seed = seed;
    return p;
}

AppProfile
fromLcRow(const LcRow &row, std::uint64_t seed)
{
    AppProfile p;
    p.name = row.name;
    p.cls = AppClass::LatencyCritical;
    p.cpiBase = row.cpi_base;
    p.feSens = row.fe_sens;
    p.beSens = row.be_sens;
    p.lsSens = row.ls_sens;
    p.feExp = row.fe_exp;
    p.beExp = row.be_exp;
    p.lsExp = row.ls_exp;
    p.apki = row.apki;
    p.mrCeil = row.mr_ceil;
    p.mrFloor = row.mr_floor;
    p.mrLambda = row.mr_lambda;
    p.memOverlap = row.overlap;
    p.activity = row.activity;
    p.requestMInstr = row.req_minstr;
    p.requestCv = row.req_cv;
    p.qosMs = row.qos_ms;
    p.seed = seed;
    return p;
}

} // namespace

std::vector<AppProfile>
specGallery()
{
    std::vector<AppProfile> gallery;
    gallery.reserve(std::size(kSpecRows));
    std::uint64_t seed = 101;
    for (const auto &row : kSpecRows)
        gallery.push_back(fromBatchRow(row, seed++));
    return gallery;
}

std::vector<AppProfile>
tailbenchGallery()
{
    std::vector<AppProfile> gallery;
    gallery.reserve(std::size(kTailbenchRows));
    std::uint64_t seed = 901;
    for (const auto &row : kTailbenchRows)
        gallery.push_back(fromLcRow(row, seed++));
    return gallery;
}

AppProfile
profileByName(const std::string &name)
{
    for (const auto &p : specGallery()) {
        if (p.name == name)
            return p;
    }
    for (const auto &p : tailbenchGallery()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown application profile '", name, "'");
}

TrainTestSplit
splitSpecGallery(std::size_t train_count, std::uint64_t seed)
{
    auto gallery = specGallery();
    CS_ASSERT(train_count <= gallery.size(),
              "train count ", train_count, " exceeds gallery size ",
              gallery.size());
    Rng rng(seed);
    auto train_idx = rng.sampleWithoutReplacement(gallery.size(),
                                                  train_count);
    std::vector<bool> in_train(gallery.size(), false);
    for (auto i : train_idx)
        in_train[i] = true;

    TrainTestSplit split;
    for (std::size_t i = 0; i < gallery.size(); ++i) {
        if (in_train[i])
            split.train.push_back(gallery[i]);
        else
            split.test.push_back(gallery[i]);
    }
    return split;
}

} // namespace cuttlesys
