/**
 * @file
 * Random application-profile synthesis.
 *
 * Property-based tests and the training-set-size sensitivity study
 * need arbitrary-but-plausible applications beyond the fixed gallery.
 * Profiles are drawn from the same latent ranges the gallery was
 * hand-calibrated within, so every generated profile exercises the
 * core model inside its validated envelope.
 */

#ifndef CUTTLESYS_APPS_GENERATOR_HH
#define CUTTLESYS_APPS_GENERATOR_HH

#include <vector>

#include "apps/app_profile.hh"

namespace cuttlesys {

class Rng;

/** Draw one random batch profile. */
AppProfile randomBatchProfile(Rng &rng, const std::string &name);

/** Draw one random latency-critical profile. */
AppProfile randomLcProfile(Rng &rng, const std::string &name);

/** Draw @p count random batch profiles named "<prefix>NN". */
std::vector<AppProfile> randomBatchProfiles(Rng &rng, std::size_t count,
                                            const std::string &prefix =
                                                "synth");

} // namespace cuttlesys

#endif // CUTTLESYS_APPS_GENERATOR_HH
