#include "apps/app_profile.hh"

#include <cstddef>

namespace cuttlesys {

double
residualFactor(const AppProfile &profile, std::size_t joint_index)
{
    // SplitMix64-style avalanche over (seed, config index).
    std::uint64_t x = profile.seed * 0x9e3779b97f4a7c15ULL +
                      (static_cast<std::uint64_t>(joint_index) + 1) *
                      0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    // Map to [0, 1) using the top 53 bits, then to [1-s, 1+s].
    const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
    return 1.0 + profile.residualScale * (2.0 * u - 1.0);
}

} // namespace cuttlesys
