#include "apps/generator.hh"

#include <sstream>

#include "common/rng.hh"

namespace cuttlesys {

AppProfile
randomBatchProfile(Rng &rng, const std::string &name)
{
    AppProfile p;
    p.name = name;
    p.cls = AppClass::Batch;
    p.cpiBase = rng.uniform(0.26, 0.44);

    // Split a total compute-sensitivity budget across the three
    // sections so apps bottleneck in different places.
    const double budget = rng.uniform(0.08, 0.40);
    double w_fe = rng.uniform(0.05, 1.0);
    double w_be = rng.uniform(0.05, 1.0);
    double w_ls = rng.uniform(0.05, 1.0);
    const double w_sum = w_fe + w_be + w_ls;
    p.feSens = budget * w_fe / w_sum;
    p.beSens = budget * w_be / w_sum;
    p.lsSens = budget * w_ls / w_sum;
    p.feExp = rng.uniform(1.0, 1.6);
    p.beExp = rng.uniform(1.0, 1.6);
    p.lsExp = rng.uniform(1.0, 1.7);

    p.apki = rng.uniform(0.8, 34.0);
    p.mrFloor = rng.uniform(0.03, 0.4);
    p.mrCeil = p.mrFloor + rng.uniform(0.15, 0.5);
    p.mrLambda = rng.uniform(1.0, 6.0);
    p.memOverlap = rng.uniform(0.22, 0.58);
    p.activity = rng.uniform(0.6, 1.2);
    p.seed = rng();
    return p;
}

AppProfile
randomLcProfile(Rng &rng, const std::string &name)
{
    AppProfile p = randomBatchProfile(rng, name);
    p.cls = AppClass::LatencyCritical;
    p.requestMInstr = rng.uniform(2.0, 16.0);
    p.requestCv = rng.uniform(0.3, 1.0);
    p.qosMs = rng.uniform(2.0, 14.0);
    return p;
}

std::vector<AppProfile>
randomBatchProfiles(Rng &rng, std::size_t count,
                    const std::string &prefix)
{
    std::vector<AppProfile> profiles;
    profiles.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::ostringstream name;
        name << prefix;
        name.fill('0');
        name.width(2);
        name << i;
        profiles.push_back(randomBatchProfile(rng, name.str()));
    }
    return profiles;
}

} // namespace cuttlesys
