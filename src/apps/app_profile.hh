/**
 * @file
 * Application behavior profiles.
 *
 * The paper's evaluation runs SPEC CPU2006 and TailBench binaries under
 * zsim. The scheduler, however, never inspects those binaries: it only
 * observes (throughput, tail latency, power) per configuration. We
 * therefore replace each binary with a *profile* — a small set of
 * parameters that drives an analytical core model (src/sim) and a
 * queueing simulator (src/lcsim) to produce exactly those observables.
 *
 * The parameterization is chosen so the resulting app x configuration
 * matrices have the two properties the paper's techniques rely on:
 *  - different applications bottleneck on different core sections
 *    (Fig 1's characterization), and
 *  - the matrices are approximately low-rank (few latent parameters),
 *    which is what makes collaborative filtering work — while a
 *    deterministic per-(app, config) residual keeps them from being
 *    exactly low-rank, so reconstruction error stays non-trivial.
 */

#ifndef CUTTLESYS_APPS_APP_PROFILE_HH
#define CUTTLESYS_APPS_APP_PROFILE_HH

#include <cstdint>
#include <string>

namespace cuttlesys {

/** Workload class, which decides the performance metric. */
enum class AppClass
{
    Batch,           //!< throughput (BIPS) metric
    LatencyCritical, //!< tail-latency (p99) metric
};

/**
 * Behavioral profile of one application.
 *
 * CPI model (see model/core_model.hh for the full equations):
 *   cpi = cpiBase * (1 + sum over sections s of
 *                        sens_s * ((6 / width_s)^exp_s - 1))
 *       + (apki / 1000) * (llcLat + missRatio(ways) * dramLat)
 *         * memOverlap * lsCoupling(widthLS)
 * with missRatio(ways) = mrFloor + (mrCeil - mrFloor) * 2^(-ways / mrLambda).
 */
struct AppProfile
{
    std::string name;
    AppClass cls = AppClass::Batch;

    // --- core-section sensitivity -----------------------------------
    double cpiBase = 0.30;  //!< CPI on an ideal (infinitely wide) core
    double feSens = 0.1;    //!< front-end stall sensitivity
    double beSens = 0.1;    //!< back-end stall sensitivity
    double lsSens = 0.1;    //!< load/store-queue stall sensitivity
    double feExp = 1.3;     //!< front-end narrowing exponent
    double beExp = 1.3;     //!< back-end narrowing exponent
    double lsExp = 1.3;     //!< load/store narrowing exponent

    // --- memory behavior ---------------------------------------------
    double apki = 5.0;      //!< LLC accesses per kilo-instruction
    double mrCeil = 0.6;    //!< LLC miss ratio with ~0 ways
    double mrFloor = 0.1;   //!< LLC miss ratio with many ways
    double mrLambda = 2.0;  //!< MRC decay constant (ways per halving)
    double memOverlap = 0.4; //!< fraction of miss latency exposed (MLP)

    // --- power behavior ------------------------------------------------
    double activity = 1.0;  //!< dynamic-energy activity factor

    // --- latency-critical request model (LC apps only) ----------------
    double requestMInstr = 4.0; //!< mean instructions per request (1e6)
    double requestCv = 0.7;     //!< coefficient of variation of work
    double qosMs = 5.0;         //!< p99 latency target (ms)
    /**
     * Calibrated knee-point load on the reference 16-core system
     * (queries/s); 0 until lcsim::findMaxQps() has been run.
     */
    double maxQps = 0.0;

    // --- model residual -------------------------------------------------
    /**
     * Scale of the deterministic per-(app, config) multiplicative
     * residual applied to IPC (breaks exact low-rankness).
     */
    double residualScale = 0.03;
    std::uint64_t seed = 1;  //!< residual hash seed, unique per app

    bool isLatencyCritical() const
    {
        return cls == AppClass::LatencyCritical;
    }

    /** Mean per-request work in instructions (LC apps). */
    double requestInstructions() const { return requestMInstr * 1e6; }

    /** p99 target in seconds (LC apps). */
    double qosSeconds() const { return qosMs * 1e-3; }
};

/**
 * Deterministic residual factor for (app, joint-config) pairs.
 *
 * A hash of (profile.seed, joint_index) mapped into
 * [1 - scale, 1 + scale]. The same pair always gives the same factor,
 * so it acts as model error, not measurement noise.
 */
double residualFactor(const AppProfile &profile, std::size_t joint_index);

} // namespace cuttlesys

#endif // CUTTLESYS_APPS_APP_PROFILE_HH
