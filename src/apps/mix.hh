/**
 * @file
 * Workload-mix construction (Section VII-A).
 *
 * The paper evaluates 50 colocations: each of the 5 TailBench services
 * paired with 10 multiprogrammed 16-app mixes drawn from the SPEC
 * benchmarks *not* used for offline training. A mix may repeat an
 * application (each core draws independently), exactly as in the
 * paper's "randomly selecting one of the remaining SPECCPU2006
 * benchmarks to run on each core".
 */

#ifndef CUTTLESYS_APPS_MIX_HH
#define CUTTLESYS_APPS_MIX_HH

#include <cstdint>
#include <string>
#include <vector>

#include "apps/app_profile.hh"

namespace cuttlesys {

/** One colocation: a latency-critical service plus a batch mix. */
struct WorkloadMix
{
    std::string name;        //!< e.g. "xapian/mix03"
    AppProfile lc;           //!< the latency-critical service
    std::vector<AppProfile> batch; //!< one profile per batch core
};

/**
 * Build one batch mix of @p size apps drawn (with replacement) from
 * @p pool. Repeated apps get distinct residual seeds so two copies of
 * "mcf" do not produce byte-identical rows.
 */
std::vector<AppProfile> makeBatchMix(const std::vector<AppProfile> &pool,
                                     std::size_t size,
                                     std::uint64_t seed);

/**
 * Build the full 50-mix evaluation set: every TailBench profile (with
 * @p calibrated max-QPS values already filled in by the caller) paired
 * with @p mixes_per_lc mixes of @p mix_size apps from @p pool.
 */
std::vector<WorkloadMix>
makeEvaluationMixes(const std::vector<AppProfile> &lc_apps,
                    const std::vector<AppProfile> &pool,
                    std::size_t mixes_per_lc = 10,
                    std::size_t mix_size = 16,
                    std::uint64_t seed = 7177);

} // namespace cuttlesys

#endif // CUTTLESYS_APPS_MIX_HH
