/**
 * @file
 * Multi-tenant accounting: accounts, decayed usage, fair-share.
 *
 * The fleet's churned arrivals stop being anonymous here: every job
 * belongs to an account (tenant), drawn deterministically from the
 * churn engine's counter-hash stream, and the ledger tracks what each
 * account has consumed — width-weighted core-seconds and giga-
 * instructions — with an exponential half-life decay, the same shape
 * Slurm's multifactor priority plugin applies to its usage records.
 * The decayed usage yields the classic fair-share factor
 *
 *     F(a) = 2^(-U(a) / S(a))
 *
 * where U(a) is account a's share of the cluster's decayed usage and
 * S(a) its share of the configured shares: an account consuming
 * exactly its entitlement scores 0.5, an idle account scores 1, a hog
 * decays toward 0. The controller orders its pending queue by
 *
 *     priority(job) = classWeight(qos) * F(account) * (1 + w * age)
 *
 * — fair-share x age x QoS class — under the strict deterministic
 * total order (priority desc, arrival seq asc), so the cluster trace
 * stays bitwise identical at any pool width. With a single uniform
 * account (the default) every factor is job-independent, age is
 * monotone in the submit quantum, and the order degenerates to exact
 * FIFO — which is why the legacy single-tenant fleet behaves
 * identically under this layer.
 *
 * All ledger mutation happens in the controller's single-threaded
 * merge phases; nothing here is touched from the parallel scans.
 */

#ifndef CUTTLESYS_CLUSTER_ACCOUNTING_HH
#define CUTTLESYS_CLUSTER_ACCOUNTING_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cuttlesys {
namespace cluster {

/**
 * Job priority class, lowest first. Preemption is class-strict: an
 * arrival may evict a running job only from a *strictly lower* class,
 * which bounds every preemption cascade (a victim can never preempt
 * its preemptor back).
 */
enum class QosClass : std::uint8_t
{
    Batch = 0,       //!< throughput work, evictable
    Normal = 1,      //!< default service class
    Interactive = 2, //!< latency-sensitive, may preempt lower classes
};

inline constexpr std::size_t kNumQosClasses = 3;

/** Printable name ("batch", "normal", "interactive"). */
const char *qosClassName(QosClass cls);

/** One tenant (account) submitting jobs into the fleet. */
struct TenantSpec
{
    std::string name = "default";
    /** Relative share of the churn arrival stream. */
    double arrivalWeight = 1.0;
    /** Fair-share entitlement relative to the other tenants. */
    double shares = 1.0;
    /** Class stamped on every job this tenant submits. */
    QosClass qosClass = QosClass::Batch;
};

/** Ledger and priority tuning. */
struct AccountingOptions
{
    /** Quanta for an account's decayed usage to halve. */
    double usageHalfLifeQuanta = 64.0;
    /** Aging boost per quantum waited: priority *= (1 + w * age). */
    double ageWeightPerQuantum = 0.25;
    /** Multiplicative priority weight per QosClass (Batch first). */
    std::array<double, kNumQosClasses> classWeight = {1.0, 4.0, 16.0};
};

/** Everything the ledger has recorded about one account. */
struct AccountUsage
{
    // Raw lifetime totals (sacct-style accounting).
    double coreSeconds = 0.0; //!< width-weighted, see chargeUsage()
    double ginstr = 0.0;      //!< giga-instructions retired
    double logBipsSum = 0.0;  //!< sum of log(BIPS) over slot-quanta
    std::size_t slotQuanta = 0;

    // The half-life-decayed charge that drives fair-share.
    double decayedCoreSeconds = 0.0;

    // Event counters.
    std::size_t arrivals = 0;
    std::size_t placements = 0;
    std::size_t dropsNew = 0;    //!< this account's arrival rejected
    std::size_t dropsQueued = 0; //!< evicted from the pending queue
    std::size_t preemptionsWon = 0;
    std::size_t preemptionsSuffered = 0;

    // DAG workflow outcomes (submit -> final-task departure).
    std::size_t workflowsCompleted = 0;
    double makespanQuantaSum = 0.0;
    double logMakespanSum = 0.0; //!< drives the per-account gmean
};

/**
 * The per-account usage ledger and fair-share/priority calculator.
 *
 * Usage flow per cluster quantum: the controller calls beginQuantum()
 * once at the head (decay + fair-share recompute, so admission and
 * placement see factors reflecting usage through the previous
 * quantum), charges each occupied slot with chargeUsage() in the
 * gather phase, and records admission/placement/preemption events as
 * they commit. Everything is plain double arithmetic over fixed-size
 * arrays: no allocation after construction, no RNG, no thread
 * sensitivity.
 */
class AccountingLedger
{
  public:
    /** Single anonymous account (the legacy single-tenant fleet). */
    AccountingLedger();

    /** @param tenants the accounts; empty falls back to the default
     *         single tenant. */
    explicit AccountingLedger(std::vector<TenantSpec> tenants,
                              AccountingOptions opts = {});

    std::size_t numAccounts() const { return tenants_.size(); }
    const TenantSpec &tenant(std::size_t account) const
    {
        return tenants_[account];
    }
    const AccountingOptions &options() const { return opts_; }

    QosClass qosClass(std::size_t account) const
    {
        return tenants_[account].qosClass;
    }
    double classWeight(QosClass cls) const
    {
        return opts_.classWeight[static_cast<std::size_t>(cls)];
    }

    /**
     * Start a cluster quantum: decay every account's usage by one
     * half-life step and recompute the fair-share factors from the
     * decayed totals. Call exactly once per quantum, before admission
     * and placement consult priorities.
     */
    void beginQuantum();

    /** Fair-share factor from the last beginQuantum(); 1 when the
     *  cluster has no decayed usage yet. */
    double fairShare(std::size_t account) const
    {
        return fairShare_[account];
    }

    /**
     * Priority of a job from @p account of class @p cls submitted at
     * quantum @p submit, evaluated at quantum @p now:
     * classWeight * fairShare * (1 + ageWeight * (now - submit)).
     * Ties across jobs are broken by arrival sequence (asc) by the
     * caller — together a strict total order.
     */
    double priority(std::size_t account, QosClass cls,
                    std::uint64_t submit, std::uint64_t now) const
    {
        const double age =
            static_cast<double>(now - submit);
        return classWeight(cls) * fairShare_[account] *
            (1.0 + opts_.ageWeightPerQuantum * age);
    }

    /**
     * Charge one slot-quantum of consumption. @p core_fraction is the
     * width-weighted core allocation (totalWidth/18: a full {6,6,6}
     * core charges 1.0, a gated core 0), @p seconds the timeslice,
     * @p ginstr the giga-instructions retired, @p bips the measured
     * throughput entering the per-account gmean.
     */
    void chargeUsage(std::size_t account, double core_fraction,
                     double seconds, double ginstr, double bips);

    void recordArrival(std::size_t account)
    {
        ++usage_[account].arrivals;
    }
    void recordPlacement(std::size_t account)
    {
        ++usage_[account].placements;
    }
    void recordDropNew(std::size_t account)
    {
        ++usage_[account].dropsNew;
    }
    void recordDropQueued(std::size_t account)
    {
        ++usage_[account].dropsQueued;
    }
    void recordPreemption(std::size_t winner, std::size_t victim)
    {
        ++usage_[winner].preemptionsWon;
        ++usage_[victim].preemptionsSuffered;
    }
    /** A workflow of @p account finished with the given submit->done
     *  makespan (>= 1 quantum; floored for the log accumulation). */
    void recordWorkflowDone(std::size_t account,
                            std::uint64_t makespan_quanta);

    const AccountUsage &usage(std::size_t account) const
    {
        return usage_[account];
    }

    /** Sum of decayed core-seconds across accounts. */
    double totalDecayedUsage() const;

    /** Per-account gmean BIPS over charged slot-quanta (0 if none). */
    double gmeanBips(std::size_t account) const;

    /** Per-account gmean workflow makespan in quanta (0 if none). */
    double gmeanMakespan(std::size_t account) const;

  private:
    std::vector<TenantSpec> tenants_;
    AccountingOptions opts_;
    double decayPerQuantum_ = 1.0; //!< 2^(-1 / halfLife)
    double totalShares_ = 1.0;
    std::vector<AccountUsage> usage_;
    std::vector<double> fairShare_;
};

/** The tenants' arrival weights, in account order (for ChurnOptions). */
std::vector<double>
tenantArrivalWeights(const std::vector<TenantSpec> &tenants);

} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_ACCOUNTING_HH
