#include "cluster/power_manager.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cuttlesys {
namespace cluster {

namespace {

/** Nodes per parallel block (see ThreadPool::parallelChunks). */
constexpr std::size_t kSplitChunk = 64;

} // namespace

const char *
powerPolicyName(PowerPolicy policy)
{
    switch (policy) {
      case PowerPolicy::Static: return "static";
      case PowerPolicy::ProportionalToLoad: return "proportional";
      case PowerPolicy::HeadroomRebalance: return "headroom";
    }
    return "?";
}

ClusterPowerManager::ClusterPowerManager(PowerPolicy policy,
                                         PowerManagerOptions opts)
    : policy_(policy), opts_(opts)
{
    CS_ASSERT(opts_.rackBudgetW > 0.0, "rack budget must be positive");
    CS_ASSERT(opts_.nodeFloorW >= 0.0, "negative node floor");
    CS_ASSERT(opts_.nodeCapW == 0.0 ||
                  opts_.nodeCapW >= opts_.nodeFloorW,
              "node cap below node floor");
}

double
ClusterPowerManager::demandWeight(const NodeView &node) const
{
    switch (policy_) {
      case PowerPolicy::Static:
        return 1.0;
      case PowerPolicy::ProportionalToLoad:
        // A small base keeps a zero-load replica from being pinned to
        // the bare floor — it still runs batch work.
        return 0.1 + std::max(node.loadFraction, 0.0);
      case PowerPolicy::HeadroomRebalance: {
        // Demand = what the node actually drew last quantum, with
        // a boost when it violated QoS (it needs room to escalate
        // the LC configuration). Before the first quantum every
        // node demands equally.
        double demand = node.stepped
            ? std::max(node.measuredPowerW, opts_.nodeFloorW)
            : 1.0;
        if (node.qosViolated)
            demand += opts_.qosBoostW;
        return demand;
      }
    }
    return 1.0;
}

void
ClusterPowerManager::split(const std::vector<NodeView> &nodes,
                           std::vector<double> &out, ThreadPool &pool)
{
    const std::size_t n = nodes.size();
    CS_ASSERT(n > 0, "splitting across zero nodes");
    CS_ASSERT(opts_.rackBudgetW >=
                  opts_.nodeFloorW * static_cast<double>(n),
              "rack budget below the sum of node floors");

    // Parallel demand scan: each block writes its own weight range
    // and one partial sum. The decomposition is fixed by n alone, and
    // the partials are combined serially in block order, so weightSum
    // is the same double at any pool width.
    const std::size_t blocks = (n + kSplitChunk - 1) / kSplitChunk;
    weights_.resize(n);
    blockSums_.assign(blocks, 0.0);
    pool.parallelChunks(
        n, kSplitChunk,
        [this, &nodes](std::size_t b, std::size_t begin,
                       std::size_t end) {
            double partial = 0.0;
            for (std::size_t i = begin; i < end; ++i) {
                weights_[i] = demandWeight(nodes[i]);
                partial += weights_[i];
            }
            blockSums_[b] = partial;
        });
    double weightSum = 0.0;
    for (const double partial : blockSums_)
        weightSum += partial;

    const double distributable = opts_.rackBudgetW -
        opts_.nodeFloorW * static_cast<double>(n);
    out.resize(n);
    pool.parallelChunks(
        n, kSplitChunk,
        [this, &out, weightSum, distributable,
         n](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const double share = weightSum > 0.0
                    ? distributable * weights_[i] / weightSum
                    : distributable / static_cast<double>(n);
                out[i] = opts_.nodeFloorW + share;
            }
        });

    if (opts_.nodeCapW > 0.0) {
        // One redistribution pass: clip capped nodes and share the
        // clipped-off watts equally among the still-uncapped ones.
        // A second overflow is left as rack slack (conservative).
        double excess = 0.0;
        std::size_t uncapped = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (out[i] > opts_.nodeCapW) {
                excess += out[i] - opts_.nodeCapW;
                out[i] = opts_.nodeCapW;
            } else {
                ++uncapped;
            }
        }
        if (excess > 0.0 && uncapped > 0) {
            const double share =
                excess / static_cast<double>(uncapped);
            for (std::size_t i = 0; i < n; ++i) {
                if (out[i] < opts_.nodeCapW) {
                    out[i] = std::min(out[i] + share,
                                      opts_.nodeCapW);
                }
            }
        }
    }
}

} // namespace cluster
} // namespace cuttlesys
