#include "cluster/power_manager.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cuttlesys {
namespace cluster {

const char *
powerPolicyName(PowerPolicy policy)
{
    switch (policy) {
      case PowerPolicy::Static: return "static";
      case PowerPolicy::ProportionalToLoad: return "proportional";
      case PowerPolicy::HeadroomRebalance: return "headroom";
    }
    return "?";
}

ClusterPowerManager::ClusterPowerManager(PowerPolicy policy,
                                         PowerManagerOptions opts)
    : policy_(policy), opts_(opts)
{
    CS_ASSERT(opts_.rackBudgetW > 0.0, "rack budget must be positive");
    CS_ASSERT(opts_.nodeFloorW >= 0.0, "negative node floor");
    CS_ASSERT(opts_.nodeCapW == 0.0 ||
                  opts_.nodeCapW >= opts_.nodeFloorW,
              "node cap below node floor");
}

void
ClusterPowerManager::split(const std::vector<NodeView> &nodes,
                           std::vector<double> &out)
{
    const std::size_t n = nodes.size();
    CS_ASSERT(n > 0, "splitting across zero nodes");
    CS_ASSERT(opts_.rackBudgetW >=
                  opts_.nodeFloorW * static_cast<double>(n),
              "rack budget below the sum of node floors");

    weights_.assign(n, 1.0);
    switch (policy_) {
      case PowerPolicy::Static:
        break;
      case PowerPolicy::ProportionalToLoad:
        // A small base keeps a zero-load replica from being pinned to
        // the bare floor — it still runs batch work.
        for (std::size_t i = 0; i < n; ++i)
            weights_[i] = 0.1 + std::max(nodes[i].loadFraction, 0.0);
        break;
      case PowerPolicy::HeadroomRebalance:
        for (std::size_t i = 0; i < n; ++i) {
            // Demand = what the node actually drew last quantum, with
            // a boost when it violated QoS (it needs room to escalate
            // the LC configuration). Before the first quantum every
            // node demands equally.
            double demand = nodes[i].stepped
                ? std::max(nodes[i].measuredPowerW, opts_.nodeFloorW)
                : 1.0;
            if (nodes[i].qosViolated)
                demand += opts_.qosBoostW;
            weights_[i] = demand;
        }
        break;
    }

    double weightSum = 0.0;
    for (const double w : weights_)
        weightSum += w;

    const double distributable = opts_.rackBudgetW -
        opts_.nodeFloorW * static_cast<double>(n);
    out.assign(n, opts_.nodeFloorW);
    if (weightSum > 0.0) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] += distributable * weights_[i] / weightSum;
    } else {
        for (std::size_t i = 0; i < n; ++i)
            out[i] += distributable / static_cast<double>(n);
    }

    if (opts_.nodeCapW > 0.0) {
        // One redistribution pass: clip capped nodes and share the
        // clipped-off watts equally among the still-uncapped ones.
        // A second overflow is left as rack slack (conservative).
        double excess = 0.0;
        std::size_t uncapped = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (out[i] > opts_.nodeCapW) {
                excess += out[i] - opts_.nodeCapW;
                out[i] = opts_.nodeCapW;
            } else {
                ++uncapped;
            }
        }
        if (excess > 0.0 && uncapped > 0) {
            const double share =
                excess / static_cast<double>(uncapped);
            for (std::size_t i = 0; i < n; ++i) {
                if (out[i] < opts_.nodeCapW) {
                    out[i] = std::min(out[i] + share,
                                      opts_.nodeCapW);
                }
            }
        }
    }
}

} // namespace cluster
} // namespace cuttlesys
