#include "cluster/memo.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cuttlesys {
namespace cluster {

std::uint64_t
memoHashCombine(std::uint64_t h, std::uint64_t v)
{
    // splitmix64's finalizer over the running hash xor the value:
    // cheap, well-mixed, and a pure function of its inputs.
    std::uint64_t z = (h ^ v) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
memoHashString(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL; // FNV prime
    }
    return h;
}

std::size_t
memoBin(double value01, std::size_t bins)
{
    const double v = std::min(std::max(value01, 0.0), 1.0);
    const std::size_t b =
        static_cast<std::size_t>(v * static_cast<double>(bins));
    return std::min(b, bins - 1);
}

ScheduleMemoCache::ScheduleMemoCache(std::size_t buckets,
                                     std::size_t width)
{
    reset(buckets, width);
}

void
ScheduleMemoCache::reset(std::size_t buckets, std::size_t width)
{
    CS_ASSERT(buckets > 0, "memo cache needs at least one bucket");
    CS_ASSERT(width > 0, "memo cache needs a point width");
    buckets_ = buckets;
    width_ = width;
    keys_.assign(buckets, 0);
    valid_.assign(buckets, 0);
    points_.assign(buckets * width, 0);
    stores_ = 0;
}

const std::uint16_t *
ScheduleMemoCache::find(std::uint64_t key) const
{
    const std::size_t b = static_cast<std::size_t>(key % buckets_);
    if (!valid_[b] || keys_[b] != key)
        return nullptr;
    return points_.data() + b * width_;
}

void
ScheduleMemoCache::store(std::uint64_t key, const std::uint16_t *point)
{
    const std::size_t b = static_cast<std::size_t>(key % buckets_);
    keys_[b] = key;
    valid_[b] = 1;
    std::uint16_t *dst = points_.data() + b * width_;
    for (std::size_t i = 0; i < width_; ++i)
        dst[i] = point[i];
    ++stores_;
}

std::size_t
ScheduleMemoCache::occupied() const
{
    std::size_t n = 0;
    for (const unsigned char v : valid_)
        n += v;
    return n;
}

} // namespace cluster
} // namespace cuttlesys
