/**
 * @file
 * Cluster placement policies: which node an arriving batch job lands
 * on.
 *
 * The controller keeps arriving jobs in a FIFO queue and asks the
 * policy for a node once per job per quantum; a job the policy cannot
 * place waits in the queue (counted as a placement stall) and is
 * retried next quantum. Two policies ship:
 *
 *  - FifoFirstFit: the classic Slurm sched/builtin behavior — walk
 *    the nodes in index order and take the first one with a vacant
 *    batch slot. Ignores node state entirely, so under heterogeneous
 *    per-node load it piles arrivals onto the lowest-indexed nodes.
 *  - BackfillBinPack: Slurm-backfill-inspired scoring — among nodes
 *    with vacant slots, pick the one with the most predicted power
 *    headroom (budget minus last measured draw), penalizing nodes
 *    whose last quantum violated QoS, steering away from replicas
 *    near their diurnal load peak (batch colocated with a peaking LC
 *    replica both hurts that replica's QoS and runs gated), and
 *    lightly preferring emptier nodes. With phase-staggered replicas
 *    this lets the cluster "surf" the day: arrivals land on whichever
 *    replicas are currently in their trough — a signal an index-blind
 *    first fit cannot use.
 *
 * Policies are deterministic: ties break toward the lowest node
 * index, and no RNG is involved.
 */

#ifndef CUTTLESYS_CLUSTER_PLACEMENT_HH
#define CUTTLESYS_CLUSTER_PLACEMENT_HH

#include <cstddef>
#include <vector>

#include "apps/app_profile.hh"
#include "cluster/node.hh"

namespace cuttlesys {
namespace cluster {

/** One batch job waiting in the cluster arrival queue. */
struct PendingJob
{
    AppProfile profile;
    std::size_t submitSlice = 0; //!< quantum the job arrived in
};

/** Strategy interface: pick a node for one pending job. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Sentinel for "no node can take the job this quantum". */
    static constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

    virtual const char *name() const = 0;

    /**
     * Choose a node for @p job given the per-node views (freeSlots
     * already reflects placements made earlier this quantum), or
     * kNoNode to leave it queued.
     */
    virtual std::size_t place(const PendingJob &job,
                              const std::vector<NodeView> &nodes) = 0;
};

/** First node (by index) with a vacant slot. */
class FifoFirstFit final : public PlacementPolicy
{
  public:
    const char *name() const override { return "fifo-first-fit"; }

    std::size_t place(const PendingJob &job,
                      const std::vector<NodeView> &nodes) override;
};

/** Headroom-scored backfill (see file header). */
class BackfillBinPack final : public PlacementPolicy
{
  public:
    /**
     * @param qos_penalty_w score penalty (in watts of headroom) for a
     *        node whose last quantum violated QoS
     * @param load_penalty_w score penalty per unit of offered LC load
     *        fraction, steering arrivals toward replicas in their
     *        diurnal trough
     * @param spread_bonus_w score bonus per vacant slot, nudging the
     *        pack toward emptier nodes when headrooms tie
     */
    explicit BackfillBinPack(double qos_penalty_w = 15.0,
                             double load_penalty_w = 80.0,
                             double spread_bonus_w = 0.5)
        : qosPenaltyW_(qos_penalty_w), loadPenaltyW_(load_penalty_w),
          spreadBonusW_(spread_bonus_w)
    {
    }

    const char *name() const override { return "backfill-binpack"; }

    std::size_t place(const PendingJob &job,
                      const std::vector<NodeView> &nodes) override;

  private:
    double qosPenaltyW_;
    double loadPenaltyW_;
    double spreadBonusW_;
};

} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_PLACEMENT_HH
