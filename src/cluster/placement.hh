/**
 * @file
 * Cluster placement policies: which node an arriving batch job lands
 * on.
 *
 * The controller keeps arriving jobs in a pending queue — ordered by
 * the fair-share priority of cluster/accounting.hh, which degenerates
 * to FIFO for a single uniform tenant — and asks the policy for a
 * node once per job per quantum; a job the policy cannot place waits
 * in the queue (counted as a placement stall) and is retried next
 * quantum. Two policies ship:
 *
 *  - FifoFirstFit: the classic Slurm sched/builtin behavior — walk
 *    the nodes in index order and take the first one with a vacant
 *    batch slot. Ignores node state entirely, so under heterogeneous
 *    per-node load it piles arrivals onto the lowest-indexed nodes.
 *  - BackfillBinPack: Slurm-backfill-inspired scoring — among nodes
 *    with vacant slots, pick the one with the most predicted power
 *    headroom (budget minus last measured draw), penalizing nodes
 *    whose last quantum violated QoS, steering away from replicas
 *    near their diurnal load peak (batch colocated with a peaking LC
 *    replica both hurts that replica's QoS and runs gated), and
 *    lightly preferring emptier nodes. With phase-staggered replicas
 *    this lets the cluster "surf" the day: arrivals land on whichever
 *    replicas are currently in their trough — a signal an index-blind
 *    first fit cannot use.
 *
 * Policies are deterministic: ties break toward the lowest node
 * index, and no RNG is involved. Both are expressed as a per-node
 * score() that depends only on the node's view — never on the job —
 * which is what lets PlacementRound score all N nodes in parallel
 * once per quantum and then commit the whole arrival queue through a
 * heap in O(jobs x log N), instead of the serial O(jobs x N) rescan
 * place() performs. The two paths are bitwise-equivalent: the round
 * computes the same doubles and breaks ties the same way, a property
 * the placement tests assert up to 1024 nodes.
 */

#ifndef CUTTLESYS_CLUSTER_PLACEMENT_HH
#define CUTTLESYS_CLUSTER_PLACEMENT_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "apps/app_profile.hh"
#include "cluster/accounting.hh"
#include "cluster/dag/scorer.hh"
#include "cluster/node.hh"

namespace cuttlesys {

class ThreadPool;

namespace cluster {

/** One batch job waiting in the cluster arrival queue. */
struct PendingJob
{
    AppProfile profile;
    std::size_t submitSlice = 0; //!< quantum the job arrived in
                                 //!< (preserved across preemption, so
                                 //!< a re-queued victim keeps its
                                 //!< accrued age)
    std::int32_t account = 0;    //!< tenant identity (ledger index)
    QosClass qosClass = QosClass::Batch;
    /** Global submission sequence number: the deterministic
     *  tie-breaker of the priority order (priority desc, seq asc). */
    std::uint32_t arrivalSeq = 0;
    /** DAG identity: the live workflow slot and task index of a
     *  released workflow task, or -1 for plain churned jobs. DAG
     *  entries ride the same queue and priority order but occupy
     *  reserved capacity (never the churn admission cap) and — when
     *  they carry inputs — commit through the data-gravity path. */
    std::int32_t wfSlot = -1;
    std::int16_t wfTask = -1;
};

/** Strategy interface: pick a node for one pending job. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Sentinel for "no node can take the job this quantum". */
    static constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

    virtual const char *name() const = 0;

    /**
     * Desirability of placing the next job on @p node. Only consulted
     * for nodes with a vacant slot. A pure function of the view — in
     * particular job-agnostic — so PlacementRound may evaluate it
     * from any worker in any order and cache it across the queue.
     */
    virtual double score(const NodeView &node) const = 0;

    /**
     * Serial reference placement: scan the views in index order and
     * take the first strict argmax of score() among nodes with a
     * vacant slot (ties therefore break toward the lowest index), or
     * kNoNode when every slot is taken. @p job is carried for
     * interface symmetry; scores do not depend on it.
     *
     * PlacementRound commits the same choices without the per-job
     * rescan; this scan stays as the O(N) oracle the property tests
     * and the controller benchmark baseline compare against.
     */
    std::size_t place(const PendingJob &job,
                      const std::vector<NodeView> &nodes) const;
};

/** First node (by index) with a vacant slot. */
class FifoFirstFit final : public PlacementPolicy
{
  public:
    const char *name() const override { return "fifo-first-fit"; }

    /** Every vacant node ties at 0; lowest index wins = first fit. */
    double score(const NodeView &node) const override;
};

/**
 * Headroom-scored backfill (see file header).
 *
 * The score is a single formula on a single scale — watts of power
 * headroom (the one documented here; score() implements it verbatim):
 *
 *   score(v) = headroomW(v)
 *            - qos_penalty_w  * [v violated QoS last quantum]
 *            - load_penalty_w * loadFraction(v)
 *            + spread_bonus_w * freeSlots(v)
 *
 * headroomW is budgetW - measuredPowerW; a node that has not stepped
 * yet reports measuredPowerW = 0, so it scores its full opening
 * budget as headroom. (An earlier revision zeroed unstepped headroom,
 * which silently demoted the knobs from watts to unitless "points"
 * for the whole first quantum — the comparison tables in
 * EXPERIMENTS.md are regenerated against this normalized formula.)
 *
 * The formula is no longer hand-rolled: it is the canonical
 * configuration of the composable dag::PlacementScorer term pipeline
 * (headroom, qos-penalty, offered-load, spread-bonus, each a weighted
 * term), which reproduces the monolithic accumulation bit for bit —
 * see cluster/dag/scorer.hh for the IEEE argument and the property
 * test asserting it. The optional locality pair (inputs-resident
 * bonus vs. transfer-latency charge) rides the same pipeline: it is
 * job-dependent, so it enters placement as the per-node delta the
 * fleet hands PlacementRound::placeBest(), never through the cached
 * job-agnostic score().
 */
class BackfillBinPack final : public PlacementPolicy
{
  public:
    /**
     * All knobs are in watts of headroom at their reference point, so
     * they trade off against each other directly:
     * @param qos_penalty_w headroom a QoS-violating node forfeits
     * @param load_penalty_w headroom forfeited at full offered LC
     *        load (scales linearly with the load fraction), steering
     *        arrivals toward replicas in their diurnal trough
     * @param spread_bonus_w headroom credited per vacant slot,
     *        nudging the pack toward emptier nodes when headrooms tie
     * @param locality_bonus_w headroom credited at fully-resident
     *        inputs (data gravity; 0 keeps the policy job-agnostic)
     * @param transfer_penalty_w headroom charged at fully-remote
     *        inputs (the modeled transfer latency's placement cost)
     */
    explicit BackfillBinPack(double qos_penalty_w = 15.0,
                             double load_penalty_w = 80.0,
                             double spread_bonus_w = 0.5,
                             double locality_bonus_w = 0.0,
                             double transfer_penalty_w = 0.0)
        : pipeline_(dag::PlacementScorer::backfill(
              qos_penalty_w, load_penalty_w, spread_bonus_w,
              locality_bonus_w, transfer_penalty_w))
    {
    }

    /** Wrap an arbitrary term pipeline as a placement policy. */
    explicit BackfillBinPack(dag::PlacementScorer pipeline)
        : pipeline_(std::move(pipeline))
    {
    }

    const char *name() const override { return "backfill-binpack"; }

    double score(const NodeView &node) const override;

    /** The term pipeline (job-side locality weights included). */
    const dag::PlacementScorer &pipeline() const { return pipeline_; }

  private:
    dag::PlacementScorer pipeline_;
};

/**
 * One quantum's placement pass: parallel scan, ordered commit.
 *
 * begin() scores every node once, block-parallel over fixed-size
 * chunks (bitwise deterministic at any pool width — each score is a
 * pure function of one view), then builds a max-heap of the vacant
 * nodes. placeOne() pops the argmax, books the slot in the caller's
 * view (so no slot is ever double-booked within the quantum),
 * re-scores just the booked node in place while it still has
 * vacancies, and removes it the moment it reaches zero — a full node
 * can never re-enter the heap, with a stale score or otherwise.
 *
 * Views mutated *outside* placeOne() — the fleet's preemption path
 * vacates and re-books slots mid-round — must be reported through
 * refresh(idx): the round tracks every node's heap position, so
 * refresh re-scores, re-inserts, or removes the entry and the heap
 * never carries a score that disagrees with its view. placeOne()
 * asserts the invariant (a popped node must have a vacancy), so an
 * unreported external booking fails loudly instead of double-booking.
 *
 * The choices are bitwise identical to calling place() per job: same
 * score doubles, same (score desc, index asc) order.
 *
 * All buffers are persistent members that reach their high-water
 * size after the first quantum; steady-state rounds are heap-free.
 */
class PlacementRound
{
  public:
    PlacementRound() = default;

    PlacementRound(const PlacementRound &) = delete;
    PlacementRound &operator=(const PlacementRound &) = delete;

    /**
     * Score @p views (block-parallel on @p pool) and build the commit
     * heap. @p views must outlive the round and stay otherwise
     * untouched until the last placeOne().
     */
    void begin(const PlacementPolicy &policy,
               std::vector<NodeView> &views, ThreadPool &pool);

    /**
     * Commit the next job: the node with the highest score (ties to
     * the lowest index), with its view's freeSlots/occupiedSlots
     * updated, or PlacementPolicy::kNoNode when the fleet is full.
     */
    std::size_t placeOne();

    /**
     * Commit the next job under a per-node score *delta* (the
     * data-gravity path): choose the first strict argmax of
     * score(view) + delta[idx] over the vacant nodes in index order
     * (ties therefore break toward the lowest index, exactly like the
     * serial oracle), book the slot, and re-sync the winner's heap
     * entry. O(N) against placeOne()'s O(log N): the delta reshuffles
     * the order per job, so the cached heap cannot answer it — but
     * the base scores are still the round's cached scan, kept fresh
     * by every placeOne()/placeBest()/refresh() booking, so no score
     * is ever recomputed twice. @p delta must hold one entry per
     * view; kNoNode when the fleet is full.
     */
    std::size_t placeBest(const double *delta);

    /**
     * Re-sync node @p idx after the caller mutated its view outside
     * placeOne() (the fleet's preemption path vacating or re-booking
     * slots mid-round). Re-scores the entry in place, inserts a node
     * that regained a vacancy, or removes one that reached zero —
     * whichever the view now calls for.
     */
    void refresh(std::size_t idx);

    /** Nodes that still have at least one vacant slot. */
    std::size_t vacantNodes() const { return heap_.size(); }

  private:
    /** Heap record: cached score of one vacant node. */
    struct Entry
    {
        double score = 0.0;
        std::size_t idx = 0; //!< position in the views vector
    };

    /** pos_ value for a node not currently in the heap. */
    static constexpr std::size_t kNotInHeap =
        static_cast<std::size_t>(-1);

    static bool entryBelow(const Entry &a, const Entry &b);

    /** Restore the heap property downward from @p i. */
    void siftDown(std::size_t i);
    /** Restore the heap property upward from @p i. */
    void siftUp(std::size_t i);
    /** Remove the entry at heap position @p i. */
    void removeAt(std::size_t i);

    const PlacementPolicy *policy_ = nullptr;
    std::vector<NodeView> *views_ = nullptr;
    std::vector<double> scores_; //!< parallel-scan output, per view
    std::vector<Entry> heap_;    //!< max-heap of vacant nodes
    std::vector<std::size_t> pos_; //!< node idx -> heap position
};

} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_PLACEMENT_HH
