#include "cluster/node.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cuttlesys {
namespace cluster {

ClusterNode::ClusterNode(const SystemParams &params,
                         const TrainingTables &tables, WorkloadMix mix,
                         std::uint64_t seed, DriverOptions opts,
                         std::size_t index, CuttleSysOptions sched_opts)
    : index_(index), mix_(std::move(mix)), sim_(params, mix_, seed),
      scheduler_(params, tables, mix_.batch.size(),
                 mix_.lc.qosSeconds(), sched_opts),
      opts_(withNode(std::move(opts), index)),
      run_(sim_, scheduler_, opts_)
{
    planned_.resize(sim_.numBatchJobs());
    for (std::size_t j = 0; j < planned_.size(); ++j) {
        planned_[j] = sim_.batchSlotOccupied(j);
        if (!planned_[j])
            ++freeSlots_;
    }
    advanceFirstVacant(0);
}

void
ClusterNode::advanceFirstVacant(std::size_t from)
{
    // Scans resume where occupancy last changed, so the total scan
    // work over a quantum's churn events is O(slots + events).
    firstVacant_ = from;
    while (firstVacant_ < planned_.size() && planned_[firstVacant_])
        ++firstVacant_;
}

void
ClusterNode::queueJobEvent(const JobEvent &event)
{
    CS_ASSERT(event.slot < planned_.size(),
              "job event slot out of range");
    run_.queueJobEvent(event);
    if (event.arrival && !planned_[event.slot]) {
        planned_[event.slot] = true;
        --freeSlots_;
        if (event.slot == firstVacant_)
            advanceFirstVacant(firstVacant_ + 1);
    } else if (event.departure && !event.arrival &&
               planned_[event.slot]) {
        planned_[event.slot] = false;
        ++freeSlots_;
        firstVacant_ = std::min(firstVacant_, event.slot);
    }
}

double
ClusterNode::lastJobGmeanBips() const
{
    const SliceMeasurement &m = run_.lastMeasurement();
    double logSum = 0.0;
    std::size_t count = 0;
    for (std::size_t j = 0; j < m.batchBips.size(); ++j) {
        if (!sim_.batchSlotOccupied(j))
            continue;
        logSum += std::log(std::max(m.batchBips[j], 1e-3));
        ++count;
    }
    return count > 0
        ? std::exp(logSum / static_cast<double>(count))
        : 0.0;
}

void
ClusterNode::view(NodeView &out) const
{
    out.node = index_;
    out.freeSlots = freeSlots();
    out.occupiedSlots = planned_.size() - out.freeSlots;
    const bool stepped = run_.nextSlice() > 0;
    out.stepped = stepped;
    if (stepped) {
        out.loadFraction = run_.lastLoadFraction();
        out.budgetW = run_.lastPowerBudgetW();
        out.measuredPowerW = run_.lastMeasurement().totalPower;
        out.qosViolated = run_.lastQosViolated();
        out.gmeanBips = run_.lastGmeanBips();
    } else {
        // Before the first quantum the policies see the configured
        // traces' opening values instead of zeros.
        out.loadFraction = opts_.loadPattern.at(sim_.now());
        out.budgetW = opts_.powerPattern.at(sim_.now()) *
            opts_.maxPowerW;
        out.measuredPowerW = 0.0;
        out.qosViolated = false;
        out.gmeanBips = 0.0;
    }
    out.headroomW = out.budgetW - out.measuredPowerW;
}

} // namespace cluster
} // namespace cuttlesys
