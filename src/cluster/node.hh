/**
 * @file
 * One fleet node: a full single-server CuttleSys stack behind a
 * stepper interface the cluster controller can drive.
 *
 * A ClusterNode owns its MulticoreSim, its CuttleSysScheduler and the
 * ColocationRun stepper that connects them, so stepping one node
 * touches no state shared with any other node — which is what lets
 * FleetController step all nodes concurrently on the global thread
 * pool while keeping the cluster trace bitwise deterministic at any
 * pool width. The node also keeps a *planned* batch-slot occupancy
 * map that reflects churn events already queued but not yet applied,
 * so the placement policy never double-books a slot within a quantum.
 */

#ifndef CUTTLESYS_CLUSTER_NODE_HH
#define CUTTLESYS_CLUSTER_NODE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cuttlesys.hh"
#include "sim/driver.hh"

namespace cuttlesys {
namespace cluster {

/**
 * What the controller-side policies (placement, power split, load
 * rebalancing) see of one node each quantum. Gathered single-threaded
 * from the node's last executed quantum, so it works untraced.
 */
struct NodeView
{
    std::size_t node = 0;
    std::size_t freeSlots = 0;     //!< vacant batch slots (planned)
    std::size_t occupiedSlots = 0; //!< occupied batch slots (planned)
    double loadFraction = 0.0;     //!< offered LC load this quantum
    double budgetW = 0.0;          //!< last quantum's power budget
    double measuredPowerW = 0.0;   //!< last quantum's chip power
    double headroomW = 0.0;        //!< budgetW - measuredPowerW
    bool qosViolated = false;      //!< last quantum violated QoS
    double gmeanBips = 0.0;        //!< last quantum's batch gmean
    bool stepped = false;          //!< at least one quantum has run
};

/** One node of the fleet: sim + scheduler + stepper, self-contained. */
class ClusterNode
{
  public:
    /**
     * @param params machine parameters (shared by all nodes)
     * @param tables offline training tables (shared, read-only)
     * @param mix this node's colocation (LC service + batch mix)
     * @param seed this node's simulator seed
     * @param opts fully configured driver options (load pattern,
     *             budget pattern, tracing sink, ...); nodeIndex is
     *             stamped with @p index here
     * @param index this node's fleet index
     * @param sched_opts runtime tuning for this node's scheduler
     */
    ClusterNode(const SystemParams &params, const TrainingTables &tables,
                WorkloadMix mix, std::uint64_t seed, DriverOptions opts,
                std::size_t index, CuttleSysOptions sched_opts = {});

    ClusterNode(const ClusterNode &) = delete;
    ClusterNode &operator=(const ClusterNode &) = delete;

    std::size_t index() const { return index_; }

    std::size_t numSlices() const { return run_.numSlices(); }
    std::size_t nextSlice() const { return run_.nextSlice(); }
    bool done() const { return run_.done(); }

    /** Run one decision quantum. @pre !done() */
    void step() { run_.step(); }

    /**
     * Queue a churn event for the head of the next step() and update
     * the planned occupancy the placement policy consults.
     */
    void queueJobEvent(const JobEvent &event);

    /**
     * Stamp the account of a slot's construction-time occupant (see
     * ColocationRun::setSlotAccount). Later occupants carry their
     * account on their JobEvent.
     */
    void setInitialSlotAccount(std::size_t slot, std::int32_t account)
    {
        run_.setSlotAccount(slot, account);
    }

    /** Next-quantum overrides (see ColocationRun). */
    void overrideLoadFraction(double fraction)
    {
        run_.overrideLoadFraction(fraction);
    }
    void overridePowerBudgetW(double watts)
    {
        run_.overridePowerBudgetW(watts);
    }

    std::size_t numBatchSlots() const { return planned_.size(); }

    /** Occupancy including queued-but-unapplied churn events. */
    bool slotPlannedOccupied(std::size_t slot) const
    {
        return planned_[slot];
    }

    /**
     * Planned-vacant slots (what placement may still fill). O(1):
     * maintained incrementally by queueJobEvent, so the controller's
     * view gather is O(nodes), not O(nodes x slots).
     */
    std::size_t freeSlots() const { return freeSlots_; }

    /** Lowest planned-vacant slot; numBatchSlots() when full. O(1)
     *  amortized over a quantum's churn events. */
    std::size_t firstVacantSlot() const { return firstVacant_; }

    /** Fill @p out from the last executed quantum (heap-free). */
    void view(NodeView &out) const;

    /**
     * The load fraction the node's own pattern would offer next
     * quantum (before any controller override) — what the fleet's
     * replica load-shifter redistributes.
     */
    double nextLoadFraction() const
    {
        return opts_.loadPattern.at(sim_.now());
    }

    /**
     * Last quantum's geometric-mean BIPS over *occupied* batch slots
     * only (gated jobs still floor in; vacant slots don't count).
     * This is the per-job throughput a placement policy controls —
     * the all-slots gmean of gmeanBatchBips() mostly measures how
     * full the node is. 0 when no slot is occupied. @pre one step().
     */
    double lastJobGmeanBips() const;

    MulticoreSim &sim() { return sim_; }
    const MulticoreSim &sim() const { return sim_; }
    CuttleSysScheduler &scheduler() { return scheduler_; }
    ColocationRun &run() { return run_; }

    /** Aggregates over the quanta run so far. */
    const RunResult &result() { return run_.result(); }
    RunResult takeResult() { return run_.takeResult(); }

  private:
    static DriverOptions withNode(DriverOptions opts, std::size_t index)
    {
        opts.nodeIndex = index;
        return opts;
    }

    /** Re-derive firstVacant_ by scanning forward from @p from. */
    void advanceFirstVacant(std::size_t from);

    std::size_t index_;
    WorkloadMix mix_;
    MulticoreSim sim_;
    CuttleSysScheduler scheduler_;
    DriverOptions opts_;
    ColocationRun run_;
    std::vector<bool> planned_; //!< occupancy incl. queued events
    std::size_t freeSlots_ = 0;   //!< count of planned-vacant slots
    std::size_t firstVacant_ = 0; //!< lowest planned-vacant slot
};

} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_NODE_HH
