#include "cluster/accounting.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cuttlesys {
namespace cluster {

const char *
qosClassName(QosClass cls)
{
    switch (cls) {
      case QosClass::Batch:       return "batch";
      case QosClass::Normal:      return "normal";
      case QosClass::Interactive: return "interactive";
    }
    return "?";
}

AccountingLedger::AccountingLedger()
    : AccountingLedger(std::vector<TenantSpec>{}, AccountingOptions{})
{
}

AccountingLedger::AccountingLedger(std::vector<TenantSpec> tenants,
                                   AccountingOptions opts)
    : tenants_(std::move(tenants)), opts_(opts)
{
    if (tenants_.empty())
        tenants_.push_back(TenantSpec{});
    CS_ASSERT(opts_.usageHalfLifeQuanta > 0.0,
              "usage half-life must be positive");
    CS_ASSERT(opts_.ageWeightPerQuantum >= 0.0,
              "negative age weight");
    totalShares_ = 0.0;
    for (const TenantSpec &t : tenants_) {
        CS_ASSERT(t.shares > 0.0, "tenant shares must be positive");
        CS_ASSERT(t.arrivalWeight >= 0.0,
                  "negative tenant arrival weight");
        totalShares_ += t.shares;
    }
    decayPerQuantum_ = std::exp2(-1.0 / opts_.usageHalfLifeQuanta);
    usage_.assign(tenants_.size(), AccountUsage{});
    fairShare_.assign(tenants_.size(), 1.0);
}

void
AccountingLedger::beginQuantum()
{
    // Decay first, then derive the factors: admission and placement
    // this quantum see usage through the previous quantum, already
    // aged by one half-life step. Fixed account order makes the sum
    // (and therefore every factor) bitwise reproducible.
    double total = 0.0;
    for (AccountUsage &u : usage_) {
        u.decayedCoreSeconds *= decayPerQuantum_;
        total += u.decayedCoreSeconds;
    }
    for (std::size_t a = 0; a < usage_.size(); ++a) {
        if (total <= 0.0) {
            fairShare_[a] = 1.0;
            continue;
        }
        const double used = usage_[a].decayedCoreSeconds / total;
        const double entitled = tenants_[a].shares / totalShares_;
        fairShare_[a] = std::exp2(-used / entitled);
    }
}

void
AccountingLedger::chargeUsage(std::size_t account,
                              double core_fraction, double seconds,
                              double ginstr, double bips)
{
    AccountUsage &u = usage_[account];
    const double core_seconds = core_fraction * seconds;
    u.coreSeconds += core_seconds;
    u.decayedCoreSeconds += core_seconds;
    u.ginstr += ginstr;
    u.logBipsSum += std::log(std::max(bips, 1e-3));
    ++u.slotQuanta;
}

double
AccountingLedger::totalDecayedUsage() const
{
    double total = 0.0;
    for (const AccountUsage &u : usage_)
        total += u.decayedCoreSeconds;
    return total;
}

double
AccountingLedger::gmeanBips(std::size_t account) const
{
    const AccountUsage &u = usage_[account];
    return u.slotQuanta > 0
        ? std::exp(u.logBipsSum / static_cast<double>(u.slotQuanta))
        : 0.0;
}

void
AccountingLedger::recordWorkflowDone(std::size_t account,
                                     std::uint64_t makespan_quanta)
{
    AccountUsage &u = usage_[account];
    const double m = static_cast<double>(
        std::max<std::uint64_t>(makespan_quanta, 1));
    ++u.workflowsCompleted;
    u.makespanQuantaSum += m;
    u.logMakespanSum += std::log(m);
}

double
AccountingLedger::gmeanMakespan(std::size_t account) const
{
    const AccountUsage &u = usage_[account];
    return u.workflowsCompleted > 0
        ? std::exp(u.logMakespanSum /
                   static_cast<double>(u.workflowsCompleted))
        : 0.0;
}

std::vector<double>
tenantArrivalWeights(const std::vector<TenantSpec> &tenants)
{
    std::vector<double> weights;
    weights.reserve(tenants.size());
    for (const TenantSpec &t : tenants)
        weights.push_back(t.arrivalWeight);
    return weights;
}

} // namespace cluster
} // namespace cuttlesys
