/**
 * @file
 * Cluster-wide power budgeting: split one rack budget across nodes.
 *
 * The paper frames CuttleSys as the per-server layer under a
 * datacenter-level power manager that "determines the per-server
 * power budgets" (Section I); this is that layer for the fleet
 * simulator. Once per quantum the manager divides the rack budget
 * into per-node budgets, which the controller feeds to each node via
 * ColocationRun::overridePowerBudgetW. Three policies:
 *
 *  - Static: equal shares, the oblivious baseline.
 *  - ProportionalToLoad: shares follow each replica's offered LC
 *    load, so nodes riding their diurnal peak get more headroom than
 *    nodes in their trough.
 *  - HeadroomRebalance: shares follow last quantum's *measured* draw
 *    (plus a boost for QoS-violating nodes), so budget parked at
 *    idle nodes flows to the nodes actually consuming it.
 *
 * All policies are budget-conserving — the shares sum to the rack
 * budget (less any slack created by per-node caps) — and respect a
 * per-node floor so no node is starved below the power its LC
 * service needs to stay alive.
 */

#ifndef CUTTLESYS_CLUSTER_POWER_MANAGER_HH
#define CUTTLESYS_CLUSTER_POWER_MANAGER_HH

#include <cstddef>
#include <vector>

#include "cluster/node.hh"
#include "common/thread_pool.hh"

namespace cuttlesys {
namespace cluster {

/** How the rack budget is divided across nodes each quantum. */
enum class PowerPolicy
{
    Static,             //!< equal shares
    ProportionalToLoad, //!< shares follow offered LC load
    HeadroomRebalance,  //!< shares follow measured draw + QoS need
};

/** Printable policy name ("static", "proportional", "headroom"). */
const char *powerPolicyName(PowerPolicy policy);

/** Tuning for ClusterPowerManager. */
struct PowerManagerOptions
{
    double rackBudgetW = 0.0;  //!< total budget split each quantum
    double nodeFloorW = 0.0;   //!< minimum share per node
    /** Per-node cap (a node can't use more than its own chip max);
     *  0 disables capping. Capped-off watts are redistributed once
     *  to uncapped nodes; any remainder is left as rack slack. */
    double nodeCapW = 0.0;
    /** HeadroomRebalance: extra demand weight (W) for a node whose
     *  last quantum violated QoS. */
    double qosBoostW = 10.0;
};

/** Splits the rack budget according to the chosen policy. */
class ClusterPowerManager
{
  public:
    ClusterPowerManager(PowerPolicy policy, PowerManagerOptions opts);

    PowerPolicy policy() const { return policy_; }
    const PowerManagerOptions &options() const { return opts_; }

    /**
     * Compute this quantum's per-node budgets from the node views.
     * @p out is resized to nodes.size(); capacity is reused across
     * quanta so the steady-state split is heap-free.
     *
     * Per-node demand weights and proportional shares are computed
     * block-parallel on @p pool; the weight reduction combines
     * fixed-size block partials in block order and the cap
     * clip/redistribute pass runs single-threaded in node-index
     * order, so the budgets are bitwise identical at any pool width
     * (DESIGN.md §12).
     */
    void split(const std::vector<NodeView> &nodes,
               std::vector<double> &out,
               ThreadPool &pool = ThreadPool::global());

  private:
    /** The policy's demand weight for one node (pure per-view). */
    double demandWeight(const NodeView &node) const;

    PowerPolicy policy_;
    PowerManagerOptions opts_;
    std::vector<double> weights_;   //!< per-quantum scratch
    std::vector<double> blockSums_; //!< per-block weight partials
};

} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_POWER_MANAGER_HH
