#include "cluster/churn.hh"

#include <cmath>

#include "common/logging.hh"

namespace cuttlesys {
namespace cluster {

JobChurnEngine::JobChurnEngine(std::vector<AppProfile> pool,
                               std::uint64_t seed, ChurnOptions opts)
    : pool_(std::move(pool)), rng_(seed), opts_(opts)
{
    CS_ASSERT(!pool_.empty(), "churn pool is empty");
    CS_ASSERT(opts_.departureProbability >= 0.0 &&
                  opts_.departureProbability <= 1.0,
              "departure probability outside [0, 1]");
    CS_ASSERT(opts_.meanArrivalsPerQuantum >= 0.0,
              "negative arrival rate");
    departureP_ = opts_.departureProbability;
    wholeArrivals_ = static_cast<std::size_t>(
        std::floor(opts_.meanArrivalsPerQuantum));
    fracArrivals_ = opts_.meanArrivalsPerQuantum -
        static_cast<double>(wholeArrivals_);
}

std::size_t
JobChurnEngine::drawArrivals()
{
    // floor(rate) arrivals plus one Bernoulli on the fraction: the
    // mean is exact and every quantum consumes exactly one draw, so
    // the stream stays easy to reason about in replay diffs.
    return wholeArrivals_ + (rng_.bernoulli(fracArrivals_) ? 1 : 0);
}

AppProfile
JobChurnEngine::drawJob()
{
    const std::size_t idx = static_cast<std::size_t>(rng_.uniformInt(
        0, static_cast<std::int64_t>(pool_.size()) - 1));
    AppProfile job = pool_[idx];
    ++jobCounter_;
    // Distinct residual seed per arrival: two copies of the same
    // benchmark must not produce byte-identical rating rows (same
    // rule makeBatchMix applies to the static mixes).
    job.seed ^= 0x9e3779b97f4a7c15ULL * jobCounter_;
    return job;
}

} // namespace cluster
} // namespace cuttlesys
