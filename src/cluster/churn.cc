#include "cluster/churn.hh"

#include <cmath>

#include "common/logging.hh"

namespace cuttlesys {
namespace cluster {

namespace {

/** Stream tags keeping the three draw families statistically apart. */
constexpr std::uint64_t kDepartureStream = 0x1;
constexpr std::uint64_t kArrivalStream = 0x2;
constexpr std::uint64_t kJobPickStream = 0x3;
constexpr std::uint64_t kJobSeedStream = 0x4;
constexpr std::uint64_t kAccountStream = 0x5;
constexpr std::uint64_t kWorkflowArrivalStream = 0x6;
constexpr std::uint64_t kWorkflowPickStream = 0x7;
constexpr std::uint64_t kWorkflowSeedStream = 0x8;
constexpr std::uint64_t kWorkflowAccountStream = 0x9;

/** SplitMix64 finalizer: full-avalanche 64-bit mix. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Map a hash to a uniform double in [0, 1) (53 mantissa bits). */
constexpr double
toUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

JobChurnEngine::JobChurnEngine(std::vector<AppProfile> pool,
                               std::size_t num_nodes,
                               std::uint64_t seed, ChurnOptions opts)
    : pool_(std::move(pool)), numNodes_(num_nodes), seed_(seed),
      opts_(opts)
{
    CS_ASSERT(!pool_.empty(), "churn pool is empty");
    CS_ASSERT(numNodes_ > 0, "churn engine needs at least one node");
    CS_ASSERT(opts_.departureProbability >= 0.0 &&
                  opts_.departureProbability <= 1.0,
              "departure probability outside [0, 1]");
    CS_ASSERT(opts_.meanArrivalsPerQuantum >= 0.0,
              "negative arrival rate");
    const double per_node =
        opts_.meanArrivalsPerQuantum / static_cast<double>(numNodes_);
    wholeArrivalsPerNode_ =
        static_cast<std::size_t>(std::floor(per_node));
    fracArrivalsPerNode_ =
        per_node - static_cast<double>(wholeArrivalsPerNode_);
    CS_ASSERT(opts_.meanWorkflowArrivalsPerQuantum >= 0.0,
              "negative workflow arrival rate");
    const double wf_per_node = opts_.meanWorkflowArrivalsPerQuantum /
        static_cast<double>(numNodes_);
    wholeWorkflowsPerNode_ =
        static_cast<std::size_t>(std::floor(wf_per_node));
    fracWorkflowsPerNode_ =
        wf_per_node - static_cast<double>(wholeWorkflowsPerNode_);

    if (!opts_.tenantArrivalWeights.empty()) {
        double total = 0.0;
        for (const double w : opts_.tenantArrivalWeights) {
            CS_ASSERT(w >= 0.0, "negative tenant arrival weight");
            total += w;
        }
        CS_ASSERT(total > 0.0,
                  "tenant arrival weights sum to zero");
        cumTenantWeights_.reserve(opts_.tenantArrivalWeights.size());
        double cum = 0.0;
        for (const double w : opts_.tenantArrivalWeights) {
            cum += w / total;
            cumTenantWeights_.push_back(cum);
        }
        // Guard the top bucket against accumulated rounding: toUnit()
        // is < 1, so a final bound of exactly 1 covers every draw.
        cumTenantWeights_.back() = 1.0;
    }

    // Per-stream bases are avalanched once here instead of once per
    // draw: the controller issues one departure draw per occupied
    // slot per quantum, so the draw itself must stay a handful of
    // instructions.
    for (std::uint64_t s = 0; s < kNumStreams; ++s)
        streamBase_[s] = mix64(seed_ ^ s * 0xd6e8feb86659fd93ULL);
}

std::uint64_t
JobChurnEngine::draw(std::uint64_t stream, std::uint64_t quantum,
                     std::uint64_t node, std::uint64_t slot) const
{
    // Multilinear key, one finalizer: each coordinate is spread by
    // its own odd constant before the xor-combine, and the SplitMix64
    // finisher avalanches the combined key — the same construction
    // SplitMix64 itself uses on a Weyl-sequence input. One mix64 plus
    // three multiplies per draw, against four chained mix64s before.
    return mix64(streamBase_[stream] ^
                 quantum * 0x9e3779b97f4a7c15ULL ^
                 node * 0xc2b2ae3d27d4eb4fULL ^
                 slot * 0x165667b19e3779f9ULL);
}

bool
JobChurnEngine::departs(std::uint64_t quantum, std::size_t node,
                        std::size_t slot) const
{
    return toUnit(draw(kDepartureStream, quantum, node, slot)) <
        opts_.departureProbability;
}

std::size_t
JobChurnEngine::arrivalsAt(std::uint64_t quantum,
                           std::size_t node) const
{
    // floor(share) arrivals plus one Bernoulli on the fraction: the
    // cluster-wide mean is exact and every (quantum, node) consumes
    // exactly one draw, so the stream stays easy to reason about in
    // replay diffs.
    const bool extra =
        toUnit(draw(kArrivalStream, quantum, node, 0)) <
        fracArrivalsPerNode_;
    return wholeArrivalsPerNode_ + (extra ? 1 : 0);
}

AppProfile
JobChurnEngine::drawJobAt(std::uint64_t quantum, std::size_t node,
                          std::size_t k) const
{
    const std::uint64_t pick = draw(kJobPickStream, quantum, node, k);
    AppProfile job = pool_[pick % pool_.size()];
    // Distinct residual seed per arrival: two copies of the same
    // benchmark must not produce byte-identical rating rows (same
    // rule makeBatchMix applies to the static mixes). The fold is the
    // arrival's own coordinate hash, so it needs no shared counter
    // and draws stay order-independent.
    job.seed ^= draw(kJobSeedStream, quantum, node, k);
    return job;
}

std::size_t
JobChurnEngine::accountFromUnit(double u) const
{
    // Linear scan: tenant counts are single digits, and the branch-
    // free simplicity keeps the draw pure and order-independent.
    for (std::size_t a = 0; a + 1 < cumTenantWeights_.size(); ++a) {
        if (u < cumTenantWeights_[a])
            return a;
    }
    return cumTenantWeights_.size() - 1;
}

std::size_t
JobChurnEngine::accountAt(std::uint64_t quantum, std::size_t node,
                          std::size_t k) const
{
    if (cumTenantWeights_.empty())
        return 0;
    return accountFromUnit(
        toUnit(draw(kAccountStream, quantum, node, k)));
}

std::size_t
JobChurnEngine::workflowArrivalsAt(std::uint64_t quantum,
                                   std::size_t node) const
{
    // Same exact-mean split as arrivalsAt, on the workflow stream.
    const bool extra =
        toUnit(draw(kWorkflowArrivalStream, quantum, node, 0)) <
        fracWorkflowsPerNode_;
    return wholeWorkflowsPerNode_ + (extra ? 1 : 0);
}

std::uint64_t
JobChurnEngine::workflowPickAt(std::uint64_t quantum,
                               std::size_t node, std::size_t k) const
{
    return draw(kWorkflowPickStream, quantum, node, k);
}

std::uint64_t
JobChurnEngine::workflowSeedAt(std::uint64_t quantum,
                               std::size_t node, std::size_t k) const
{
    return draw(kWorkflowSeedStream, quantum, node, k);
}

std::size_t
JobChurnEngine::workflowAccountAt(std::uint64_t quantum,
                                  std::size_t node,
                                  std::size_t k) const
{
    if (cumTenantWeights_.empty())
        return 0;
    return accountFromUnit(
        toUnit(draw(kWorkflowAccountStream, quantum, node, k)));
}

} // namespace cluster
} // namespace cuttlesys
