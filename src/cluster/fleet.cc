#include "cluster/fleet.hh"

#include <algorithm>
#include <cmath>

#include "apps/mix.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace cuttlesys {
namespace cluster {

namespace {

/** Nodes per parallel block (see ThreadPool::parallelChunks). */
constexpr std::size_t kNodeChunk = 32;

/** Salts for a dag task's profile draws (taskDrawHash domains). */
constexpr std::uint64_t kDagPickSalt = 0x11;
constexpr std::uint64_t kDagSeedSalt = 0x12;

/** Tenant arrival weights flow into the churn engine's account draw
 *  (overriding any manually configured weights, so the two layers can
 *  never disagree about who account k is). */
ChurnOptions
withTenantWeights(ChurnOptions churn,
                  const std::vector<TenantSpec> &tenants)
{
    if (!tenants.empty())
        churn.tenantArrivalWeights = tenantArrivalWeights(tenants);
    return churn;
}

} // namespace

FleetController::FleetController(const SystemParams &params,
                                 const TrainingTables &tables,
                                 const AppProfile &lc_service,
                                 const std::vector<AppProfile> &batch_pool,
                                 double node_max_power_w,
                                 PlacementPolicy &placement,
                                 FleetOptions opts)
    : opts_(std::move(opts)), placement_(placement),
      // The churn stream gets its own seed domain so reconfiguring
      // the fleet (scenario, node parameters) never perturbs it, and
      // vice versa.
      churn_(batch_pool, opts_.numNodes,
             opts_.seed ^ 0x94d049bb133111ebULL,
             withTenantWeights(opts_.churn, opts_.tenants)),
      ledger_(opts_.tenants, opts_.accounting),
      power_(opts_.powerPolicy,
             PowerManagerOptions{
                 .rackBudgetW = opts_.rackBudgetFrac *
                     static_cast<double>(opts_.numNodes) *
                     node_max_power_w,
                 .nodeFloorW = opts_.nodeFloorFrac * node_max_power_w,
                 .nodeCapW = node_max_power_w,
                 .qosBoostW = opts_.qosBoostW}),
      nodeMaxPowerW_(node_max_power_w),
      churnArenas_(ThreadPool::global().slotCount())
{
    CS_ASSERT(opts_.numNodes > 0, "fleet needs at least one node");
    CS_ASSERT(opts_.batchSlotsPerNode > 0, "nodes need batch slots");
    CS_ASSERT(lc_service.maxQps > 0.0,
              "LC service must be calibrated (run calibrateMaxQps)");
    CS_ASSERT(opts_.loadScaleMin > 0.0 &&
                  opts_.loadScaleMax >= opts_.loadScaleMin,
              "bad load-scale spread");

    const std::size_t n = opts_.numNodes;
    numQuanta_ = opts_.scenario.quanta(params.timesliceSec);
    timesliceSec_ = params.timesliceSec;
    slotsPerNode_ = opts_.batchSlotsPerNode;
    running_.resize(n * slotsPerNode_);

    // One master stream hands every node its mix seed and sim seed,
    // so the whole fleet is a pure function of opts.seed.
    Rng master(opts_.seed);

    nodeSinks_.reserve(n);
    nodes_.reserve(n);
    std::uint64_t firstMixSeed = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t mixSeed = master();
        const std::uint64_t simSeed = master();
        if (i == 0)
            firstMixSeed = mixSeed;

        WorkloadMix mix;
        mix.lc = lc_service;
        // uniformMixes: true replicas share one mix draw (so memo
        // signatures match across nodes); the master stream is still
        // consumed per node, keeping sim seeds identical either way.
        mix.batch = makeBatchMix(
            batch_pool, opts_.batchSlotsPerNode,
            opts_.uniformMixes ? firstMixSeed : mixSeed);

        // Replicas of one service behind a load balancer: same day,
        // staggered phase, heterogeneous popularity. Node 0 carries
        // the largest amplitude so index-blind first-fit placement
        // piles work exactly where load is highest.
        const double phase = opts_.staggerPhases
            ? opts_.scenario.daySeconds * static_cast<double>(i) /
                static_cast<double>(n)
            : 0.0;
        const double scale = n > 1
            ? opts_.loadScaleMax -
                (opts_.loadScaleMax - opts_.loadScaleMin) *
                    static_cast<double>(i) /
                    static_cast<double>(n - 1)
            : opts_.loadScaleMax;

        DriverOptions driver;
        driver.durationSec = opts_.scenario.daySeconds;
        driver.loadPattern = opts_.scenario.loadPattern(phase, scale);
        driver.powerPattern = opts_.scenario.powerPattern();
        driver.maxPowerW = node_max_power_w;
        driver.validateDecisions = opts_.validateDecisions;
        driver.keepSliceRecords = opts_.keepSliceRecords;
        if (opts_.sink) {
            nodeSinks_.push_back(
                std::make_unique<telemetry::MemorySink>());
            driver.traceSink = nodeSinks_.back().get();
        } else {
            nodeSinks_.push_back(nullptr);
        }

        // The resident mix gets its account identities from the same
        // pure counter-hash stream as churned arrivals, with the
        // reserved resident quantum coordinate — so the registry (and
        // the ledger) are a pure function of opts.seed too. Captured
        // before the mix moves into the node.
        for (std::size_t s = 0; s < mix.batch.size(); ++s) {
            RunningJob &r = runningAt(i, s);
            const std::size_t account = churn_.accountAt(
                JobChurnEngine::kResidentQuantum, i, s);
            r.profile = mix.batch[s];
            r.submitSlice = 0;
            r.arrivalSeq = nextArrivalSeq_++;
            r.account = static_cast<std::int32_t>(account);
            r.qosClass = ledger_.qosClass(account);
        }

        nodes_.push_back(std::make_unique<ClusterNode>(
            params, tables, std::move(mix), simSeed,
            std::move(driver), i, opts_.scheduler));
        nodes_.back()->sim().setPhaseDrift(opts_.phaseDriftAmplitude,
                                           opts_.phaseDriftPeriodSec);

        // Stamp the residents' accounts into the driver's per-slot
        // map (initial occupants never arrive through a JobEvent).
        ClusterNode &node = *nodes_.back();
        for (std::size_t s = 0; s < slotsPerNode_; ++s) {
            if (node.slotPlannedOccupied(s))
                node.setInitialSlotAccount(s, runningAt(i, s).account);
            else
                runningAt(i, s).account = -1;
        }
    }

    // The memo table and its per-node scratch are sized here, never
    // in the quantum loop (heap-free steady state).
    if (opts_.memoCache) {
        memo_.reset(std::max<std::size_t>(opts_.memoBuckets, 1),
                    slotsPerNode_);
    }
    memoKeys_.assign(n, 0);
    memoHit_.assign(n, 0);
    memoStore_.assign(n, 0);

    drained_.assign(n, 0);
    nodeBudgetSum_.assign(n, 0.0);
    nodePowerSum_.assign(n, 0.0);
    nodeJobGmeanSum_.assign(n, 0.0);
    nodeJobGmeanCount_.assign(n, 0);
    churnPlan_.resize(n);
    views_.resize(n);
    budgets_.reserve(n);
    loads_.assign(n, 0.0);
    loadExtra_.assign(n, 0.0);

    // DAG workflows: the engine, the per-node artifact caches, and
    // the locality term pipeline exist only when enabled — disabled,
    // no dag state is built and no workflow draw is ever consumed, so
    // the legacy fleet replays bitwise.
    if (opts_.dag.enable) {
        std::vector<dag::WorkflowSpec> templates =
            opts_.dag.templates.empty()
            ? dag::standardWorkflowTemplates()
            : opts_.dag.templates;
        engine_ = std::make_unique<dag::WorkflowEngine>(
            std::move(templates), opts_.dag.maxLiveWorkflows);
        caches_.resize(n);
        for (dag::ArtifactCache &c : caches_) {
            c.reset(opts_.dag.cacheCapacityBytes,
                    opts_.dag.cacheMaxEntries);
        }
        dagPool_ = batch_pool;
        CS_ASSERT(!dagPool_.empty(), "dag tasks need a profile pool");
        localityTerms_ = dag::PlacementScorer(
            "locality",
            {{dag::ScoreTermKind::Locality, opts_.dag.localityBonusW},
             {dag::ScoreTermKind::TransferPenalty,
              opts_.dag.transferPenaltyW}});
        dagReady_.reserve(engine_->capacityTasks());
    }

    // The queue is bounded by the admission cap plus one quantum's
    // worth of re-queued preemption victims (unplaced entries compact
    // in place, so the backing vector never grows past that bound),
    // plus — with dag on — the engine's released-task capacity (dag
    // entries ride the queue but never count against the churn cap);
    // reserving it up front makes the steady-state quantum provably
    // realloc-free. The priority scratch follows the same bound.
    const std::size_t queueBound = opts_.churn.maxPendingJobs +
        opts_.maxPreemptionsPerQuantum + 1 +
        (dagEnabled() ? engine_->capacityTasks() : 0);
    pending_.reserve(queueBound);
    prio_.reserve(queueBound);
    order_.reserve(queueBound);
    placed_.reserve(queueBound);
    if (dagEnabled()) {
        dagDeltas_.assign(queueBound * n, 0.0);
        dagRow_.reserve(queueBound);
        dagRowPending_.reserve(queueBound);
    }

    // Pre-grow every worker's staging arena to the worst case — one
    // worker staging the entire fleet's departure scan. Which worker
    // runs which block varies run to run (never the results, only the
    // addresses), so without this the arenas' high-water marks keep
    // shifting with the schedule and an unlucky quantum still touches
    // the heap; after this reset every staging alloc is a pure bump.
    for (std::size_t s = 0; s < churnArenas_.size(); ++s) {
        churnArenas_.at(s).alloc<std::uint16_t>(
            n * opts_.batchSlotsPerNode);
    }
    churnArenas_.resetAll();
}

FleetController::~FleetController() = default;

void
FleetController::applyChurn()
{
    // Parallel scan: each block stages its nodes' departure slots in
    // its worker's arena and records the plan entry — the draws are
    // pure functions of (seed, quantum, node, slot), so neither the
    // block schedule nor the worker identity can change them.
    std::vector<std::unique_ptr<ClusterNode>> &nodes = nodes_;
    churnArenas_.resetAll();
    ThreadPool::global().parallelChunks(
        nodes.size(), kNodeChunk,
        [this, &nodes](std::size_t, std::size_t begin,
                       std::size_t end) {
            ScratchArena &arena =
                churnArenas_.at(ThreadPool::currentSlot());
            for (std::size_t i = begin; i < end; ++i) {
                const ClusterNode &node = *nodes[i];
                const std::size_t slots = node.numBatchSlots();
                std::uint16_t *stage =
                    arena.alloc<std::uint16_t>(slots);
                std::uint16_t count = 0;
                for (std::size_t s = 0; s < slots; ++s) {
                    // DAG tasks depart at their deterministic
                    // deadline, never through the Bernoulli stream;
                    // skipping the draw is bitwise-safe because every
                    // draw is pure in its coordinates, not a shared
                    // sequence position.
                    if (node.slotPlannedOccupied(s) &&
                        runningAt(i, s).wfSlot < 0 &&
                        churn_.departs(quantum_, i, s)) {
                        stage[count++] =
                            static_cast<std::uint16_t>(s);
                    }
                }
                churnPlan_[i].departSlots = stage;
                churnPlan_[i].numDeparts = count;
                churnPlan_[i].arrivals = static_cast<std::uint16_t>(
                    churn_.arrivalsAt(quantum_, i));
                churnPlan_[i].workflowArrivals = dagEnabled()
                    ? static_cast<std::uint16_t>(
                          churn_.workflowArrivalsAt(quantum_, i))
                    : 0;
            }
        });

    // DAG completions commit before this quantum's churn events: a
    // departing task publishes its artifact and may release
    // successors, which enter the queue ahead of today's arrivals.
    applyDagCompletions();

    // Serial merge in node-index order: queue the departure events
    // and admit arrivals — each stamped with its deterministic
    // account draw — exactly as a sequential controller would.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const ChurnNodePlan &plan = churnPlan_[i];
        for (std::uint16_t d = 0; d < plan.numDeparts; ++d) {
            JobEvent event;
            event.slot = plan.departSlots[d];
            event.departure = true;
            nodes_[i]->queueJobEvent(event);
            runningAt(i, event.slot).account = -1;
            ++departures_;
        }
        for (std::uint16_t k = 0; k < plan.arrivals; ++k) {
            PendingJob job;
            job.profile = churn_.drawJobAt(quantum_, i, k);
            job.submitSlice = quantum_;
            job.account = static_cast<std::int32_t>(
                churn_.accountAt(quantum_, i, k));
            job.qosClass = ledger_.qosClass(
                static_cast<std::size_t>(job.account));
            job.arrivalSeq = nextArrivalSeq_++;
            ledger_.recordArrival(
                static_cast<std::size_t>(job.account));
            admitArrival(std::move(job));
        }
        for (std::uint16_t k = 0; k < plan.workflowArrivals; ++k) {
            const std::size_t tpl = static_cast<std::size_t>(
                churn_.workflowPickAt(quantum_, i, k) %
                engine_->numTemplates());
            const std::uint64_t seed =
                churn_.workflowSeedAt(quantum_, i, k);
            const std::size_t account =
                churn_.workflowAccountAt(quantum_, i, k);
            dagReady_.clear();
            const std::size_t wf = engine_->admit(
                tpl, seed, static_cast<std::int32_t>(account),
                quantum_, nextWorkflowId_, dagReady_);
            if (wf == dag::WorkflowEngine::kNoWorkflow) {
                ++workflowsDropped_;
                continue;
            }
            ++nextWorkflowId_;
            ++workflowsSubmitted_;
            enqueueReadyTasks(quantum_);
        }
    }
}

void
FleetController::applyDagCompletions()
{
    if (!dagEnabled())
        return;

    // Strict (node, slot) order: artifact publication, successor
    // release, and every sequence number a released task draws replay
    // bitwise. The Bernoulli departure scan above skipped dag slots,
    // so no slot departs twice.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        for (std::size_t s = 0; s < slotsPerNode_; ++s) {
            RunningJob &r = runningAt(i, s);
            if (r.wfSlot < 0 || r.dagDeadline != quantum_)
                continue;
            const std::size_t wf =
                static_cast<std::size_t>(r.wfSlot);
            const std::size_t task =
                static_cast<std::size_t>(r.wfTask);

            JobEvent event;
            event.slot = s;
            event.departure = true;
            event.workflowId =
                static_cast<std::int64_t>(engine_->workflowId(wf));
            event.workflowTask = static_cast<std::int32_t>(task);

            // Publish the output on the node that ran the task, then
            // let the engine release whatever the artifact unblocks.
            const dag::ArtifactRef out = engine_->taskOutput(wf, task);
            caches_[i].insert(out.id, out.bytes, quantum_);
            dagReady_.clear();
            if (engine_->onTaskCompleted(wf, task, quantum_,
                                         dagReady_, dagDone_)) {
                event.workflowMakespan = static_cast<std::int64_t>(
                    dagDone_.makespanQuanta);
                ledger_.recordWorkflowDone(
                    static_cast<std::size_t>(dagDone_.account),
                    dagDone_.makespanQuanta);
            }
            nodes_[i]->queueJobEvent(event);
            r.account = -1;
            r.wfSlot = -1;
            r.wfTask = -1;
            r.dagDeadline = 0;
            ++departures_;
            enqueueReadyTasks(quantum_);
        }
    }
}

void
FleetController::enqueueReadyTasks(std::uint64_t submit_quantum)
{
    for (const dag::WorkflowEngine::ReadyTask &t : dagReady_) {
        const std::size_t wf = t.workflow;
        const std::size_t task = t.task;
        PendingJob job;
        // The task's compute identity is a pure counter hash of the
        // instance seed: a profile pick from the churn pool plus a
        // per-task residual seed, so re-running the same workflow
        // instance replays the same jobs.
        job.profile = dagPool_[engine_->taskDrawHash(
                                   wf, task, kDagPickSalt) %
                               dagPool_.size()];
        job.profile.seed ^=
            engine_->taskDrawHash(wf, task, kDagSeedSalt);
        job.submitSlice = submit_quantum;
        job.account = engine_->account(wf);
        job.qosClass = ledger_.qosClass(
            static_cast<std::size_t>(job.account));
        job.arrivalSeq = nextArrivalSeq_++;
        job.wfSlot = static_cast<std::int32_t>(wf);
        job.wfTask = static_cast<std::int16_t>(task);
        ledger_.recordArrival(static_cast<std::size_t>(job.account));
        ++arrivals_;
        ++pendingDag_;
        pending_.push_back(std::move(job));
    }
    dagReady_.clear();
}

void
FleetController::admitArrival(PendingJob &&job)
{
    // DAG entries occupy reserved queue capacity: they neither count
    // against the churn admission cap nor compete in the drop-lowest
    // scan (a released task must eventually run or its workflow
    // deadlocks). With dag off, pendingDag_ is always 0.
    if (pending_.size() - pendingDag_ < opts_.churn.maxPendingJobs) {
        ++arrivals_;
        pending_.push_back(std::move(job));
        return;
    }
    if (!opts_.fairShareOrdering) {
        // Legacy FIFO admission: the newcomer always loses — the
        // starvation behavior the drop-lowest path below fixes.
        ++droppedArrivals_;
        ledger_.recordDropNew(static_cast<std::size_t>(job.account));
        return;
    }

    // Drop-lowest admission: the newcomer only loses to a queue whose
    // every entry outranks it. The worst incumbent is the last job
    // the commit order would reach — lowest priority, ties to the
    // youngest (highest sequence). With a single uniform tenant the
    // newcomer is always the worst (age 0 and the highest sequence),
    // reproducing the legacy drop exactly.
    const double newPrio = ledger_.priority(
        static_cast<std::size_t>(job.account), job.qosClass,
        job.submitSlice, quantum_);
    std::size_t worst = pending_.size();
    double worstPrio = 0.0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const PendingJob &p = pending_[i];
        if (p.wfSlot >= 0)
            continue; // dag entries are not displacement candidates
        const double prio = ledger_.priority(
            static_cast<std::size_t>(p.account), p.qosClass,
            p.submitSlice, quantum_);
        if (worst == pending_.size() || prio < worstPrio ||
            (prio == worstPrio &&
             p.arrivalSeq > pending_[worst].arrivalSeq)) {
            worst = i;
            worstPrio = prio;
        }
    }
    if (worst != pending_.size() && worstPrio < newPrio) {
        ledger_.recordDropQueued(
            static_cast<std::size_t>(pending_[worst].account));
        ++droppedQueued_;
        ++arrivals_;
        pending_[worst] = std::move(job);
    } else {
        ++droppedArrivals_;
        ledger_.recordDropNew(static_cast<std::size_t>(job.account));
    }
}

void
FleetController::gatherViews()
{
    // Disjoint per-node writes over read-only node state; freeSlots
    // is an O(1) counter, so the whole gather is O(nodes).
    std::vector<std::unique_ptr<ClusterNode>> &nodes = nodes_;
    ThreadPool::global().parallelChunks(
        nodes.size(), kNodeChunk,
        [this, &nodes](std::size_t, std::size_t begin,
                       std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                nodes[i]->view(views_[i]);
        });
}

void
FleetController::placePending()
{
    preemptionsThisQuantum_ = 0;
    if (pending_.empty())
        return;

    // Parallel candidate scoring over the planned-occupancy views,
    // then a single-threaded commit through the round's heap in the
    // strict priority order (priority desc, arrival seq asc): every
    // choice (and every view booking) is bitwise what the serial
    // per-job rescan would produce, at O(log N) per job instead of
    // O(N). With a single uniform tenant the order is exact FIFO.
    round_.begin(placement_, views_, ThreadPool::global());

    const std::size_t n = pending_.size();
    prio_.resize(n);
    order_.resize(n);
    placed_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const PendingJob &p = pending_[i];
        prio_[i] = ledger_.priority(
            static_cast<std::size_t>(p.account), p.qosClass,
            p.submitSlice, quantum_);
        order_[i] = static_cast<std::uint32_t>(i);
    }
    if (opts_.fairShareOrdering) {
        std::sort(order_.begin(), order_.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      if (prio_[a] != prio_[b])
                          return prio_[a] > prio_[b];
                      return pending_[a].arrivalSeq <
                          pending_[b].arrivalSeq;
                  });
    }
    // else: admission never reorders pending_, so the identity order
    // is the submission (FIFO) order.

    // Data-gravity deltas: for every pending dag task with inputs,
    // score each node's resident input-byte fraction into a delta row
    // (block-parallel — cache find() is read-only and every row/node
    // write is disjoint). Locality-blind runs skip the fill entirely:
    // transfers are still charged at commit, placement just cannot
    // see them coming.
    const std::size_t numNodes = views_.size();
    if (dagEnabled() && pendingDag_ > 0) {
        dagRow_.assign(n, -1);
        dagRowPending_.clear();
        if (opts_.dag.localityAware) {
            for (std::size_t i = 0; i < n; ++i) {
                const PendingJob &p = pending_[i];
                if (p.wfSlot < 0 ||
                    engine_->taskInputs(
                               static_cast<std::size_t>(p.wfSlot),
                               static_cast<std::size_t>(p.wfTask))
                        .empty())
                    continue;
                dagRow_[i] = static_cast<std::int32_t>(
                    dagRowPending_.size());
                dagRowPending_.push_back(
                    static_cast<std::uint32_t>(i));
            }
        }
        if (!dagRowPending_.empty()) {
            ThreadPool::global().parallelChunks(
                numNodes, kNodeChunk,
                [this, numNodes](std::size_t, std::size_t begin,
                                 std::size_t end) {
                    for (std::size_t node = begin; node < end;
                         ++node) {
                        const dag::ArtifactCache &cache =
                            caches_[node];
                        for (std::size_t row = 0;
                             row < dagRowPending_.size(); ++row) {
                            const PendingJob &p =
                                pending_[dagRowPending_[row]];
                            const std::vector<dag::ArtifactRef>
                                &inputs = engine_->taskInputs(
                                    static_cast<std::size_t>(
                                        p.wfSlot),
                                    static_cast<std::size_t>(
                                        p.wfTask));
                            double total = 0.0;
                            double resident = 0.0;
                            for (const dag::ArtifactRef &in :
                                 inputs) {
                                total += in.bytes;
                                if (cache.find(in.id))
                                    resident += in.bytes;
                            }
                            const double frac = total > 0.0
                                ? resident / total
                                : 1.0;
                            dagDeltas_[row * numNodes + node] =
                                localityTerms_.localityDelta(frac);
                        }
                    }
                });
        }
    }

    for (std::size_t oi = 0; oi < n; ++oi) {
        const std::size_t idx = order_[oi];
        // By value: a preemption below re-queues its victim into
        // pending_, which may move the storage under a reference.
        const PendingJob job = pending_[idx];
        const bool dagJob = job.wfSlot >= 0;
        const std::int32_t row =
            dagJob && idx < dagRow_.size() ? dagRow_[idx] : -1;
        const std::size_t target = row >= 0
            ? round_.placeBest(
                  &dagDeltas_[static_cast<std::size_t>(row) *
                              numNodes])
            : round_.placeOne();
        if (target == PlacementPolicy::kNoNode) {
            // DAG tasks never initiate preemption: their class comes
            // from their tenant, but releasing compute by evicting
            // compute would thrash the frontier. They wait.
            if (opts_.fairShareOrdering && !dagJob &&
                tryPreempt(job, prio_[idx])) {
                placed_[idx] = 1;
            } else if (!opts_.fairShareOrdering) {
                break; // legacy FIFO: the head job blocks the queue
            }
            continue;
        }
        CS_ASSERT(target < nodes_.size(), "policy chose a bad node");
        ClusterNode &node = *nodes_[target];
        const std::size_t slot = node.firstVacantSlot();
        CS_ASSERT(slot < node.numBatchSlots(),
                  "policy placed a job on a full node");
        JobEvent event;
        event.slot = slot;
        event.arrival = job.profile;
        event.account = job.account;
        std::uint64_t transferQuanta = 0;
        if (dagJob) {
            const std::size_t wf =
                static_cast<std::size_t>(job.wfSlot);
            const std::size_t task =
                static_cast<std::size_t>(job.wfTask);
            // Settle the inputs on the chosen node: resident ones are
            // touched (they are being read), missing ones start their
            // modeled transfer — inserted now, paid for in extra
            // effective service quanta below.
            dag::ArtifactCache &cache = caches_[target];
            std::uint32_t hits = 0;
            std::uint32_t misses = 0;
            double missingBytes = 0.0;
            for (const dag::ArtifactRef &in :
                 engine_->taskInputs(wf, task)) {
                if (cache.find(in.id)) {
                    ++hits;
                    cache.touch(in.id, quantum_);
                } else {
                    ++misses;
                    missingBytes += in.bytes;
                    cache.insert(in.id, in.bytes, quantum_);
                }
            }
            if (missingBytes > 0.0 &&
                opts_.dag.transferBytesPerQuantum > 0.0) {
                transferQuanta = static_cast<std::uint64_t>(
                    std::ceil(missingBytes /
                              opts_.dag.transferBytesPerQuantum));
            }
            event.workflowId =
                static_cast<std::int64_t>(engine_->workflowId(wf));
            event.workflowTask = static_cast<std::int32_t>(task);
            event.artifactHits = hits;
            event.artifactMisses = misses;
            event.transferBytes = missingBytes;
            artifactHits_ += hits;
            artifactMisses_ += misses;
            transferBytes_ += missingBytes;
            engine_->onTaskPlaced(wf, task);
            --pendingDag_;
        }
        node.queueJobEvent(event);
        RunningJob &r = runningAt(target, slot);
        r.profile = job.profile;
        r.submitSlice = job.submitSlice;
        r.arrivalSeq = job.arrivalSeq;
        r.account = job.account;
        r.qosClass = job.qosClass;
        r.wfSlot = job.wfSlot;
        r.wfTask = job.wfTask;
        r.dagDeadline = dagJob
            ? quantum_ +
                engine_->durationQuanta(
                    static_cast<std::size_t>(job.wfSlot),
                    static_cast<std::size_t>(job.wfTask)) +
                transferQuanta
            : 0;
        ledger_.recordPlacement(static_cast<std::size_t>(job.account));
        ++placements_;
        placed_[idx] = 1;
    }

    // Compact the unplaced entries in place — stable, so the FIFO
    // baseline keeps submission order. Entries past placed_'s range
    // are this quantum's re-queued preemption victims: always kept
    // (they re-enter the priority order next quantum with their
    // original submit quantum, i.e. all their accrued age).
    std::size_t w = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (i < placed_.size() && placed_[i])
            continue;
        if (w != i)
            pending_[w] = std::move(pending_[i]);
        ++w;
    }
    pending_.resize(w);
    placementStalls_ += pending_.size();
}

bool
FleetController::tryPreempt(const PendingJob &job, double job_priority)
{
    // Class-strict: only a strictly lower class may be evicted, so a
    // victim can never preempt its preemptor back and every cascade
    // is bounded. Batch (the lowest class) can never preempt.
    if (job.qosClass == QosClass::Batch ||
        preemptionsThisQuantum_ >= opts_.maxPreemptionsPerQuantum)
        return false;

    // Victim: the worst running job the arrival outranks — lowest
    // priority first, ties to the youngest (highest sequence, itself
    // unique) — a strict total order, so the choice replays bitwise.
    const std::size_t none = running_.size();
    std::size_t victim = none;
    double victimPrio = 0.0;
    for (std::size_t i = 0; i < running_.size(); ++i) {
        const RunningJob &r = running_[i];
        if (r.account < 0 || r.qosClass >= job.qosClass)
            continue;
        const double prio = ledger_.priority(
            static_cast<std::size_t>(r.account), r.qosClass,
            r.submitSlice, quantum_);
        if (prio >= job_priority)
            continue;
        if (victim == none || prio < victimPrio ||
            (prio == victimPrio &&
             r.arrivalSeq > running_[victim].arrivalSeq)) {
            victim = i;
            victimPrio = prio;
        }
    }
    if (victim == none)
        return false;

    const std::size_t vnode = victim / slotsPerNode_;
    const std::size_t vslot = victim % slotsPerNode_;
    RunningJob &r = running_[victim];
    ledger_.recordPreemption(static_cast<std::size_t>(job.account),
                             static_cast<std::size_t>(r.account));

    // Re-queue the victim before its registry entry is overwritten,
    // keeping its submit quantum and sequence number. A dag victim
    // goes back to Ready — it restarts (and re-pays its transfers)
    // when re-placed.
    PendingJob requeued;
    requeued.profile = r.profile;
    requeued.submitSlice = r.submitSlice;
    requeued.account = r.account;
    requeued.qosClass = r.qosClass;
    requeued.arrivalSeq = r.arrivalSeq;
    requeued.wfSlot = r.wfSlot;
    requeued.wfTask = r.wfTask;
    if (r.wfSlot >= 0) {
        engine_->onTaskPreempted(
            static_cast<std::size_t>(r.wfSlot),
            static_cast<std::size_t>(r.wfTask));
        ++pendingDag_;
    }
    pending_.push_back(std::move(requeued));

    // Vacate the victim's slot in the round's view and re-book it
    // through the round itself. placeOne() just returned kNoNode, so
    // after the refresh the freed slot is the only vacancy in the
    // fleet — the re-booking must land on the victim's node.
    views_[vnode].freeSlots += 1;
    views_[vnode].occupiedSlots -= 1;
    round_.refresh(vnode);
    const std::size_t target = round_.placeOne();
    CS_ASSERT(target == vnode, "preemption re-booking went astray");

    // One combined departure+arrival event on the occupied slot: the
    // node's planned occupancy is net-unchanged, and the driver fires
    // the churn seam once — the slot's learned CF state drops, so the
    // preemptor never inherits the victim's observations.
    JobEvent event;
    event.slot = vslot;
    event.departure = true;
    event.arrival = job.profile;
    event.account = job.account;
    event.preemption = true;
    nodes_[vnode]->queueJobEvent(event);

    r.profile = job.profile;
    r.submitSlice = job.submitSlice;
    r.arrivalSeq = job.arrivalSeq;
    r.account = job.account;
    r.qosClass = job.qosClass;
    r.wfSlot = -1; // preemptors are plain jobs (dag tasks never preempt)
    r.wfTask = -1;
    r.dagDeadline = 0;

    ledger_.recordPlacement(static_cast<std::size_t>(job.account));
    ++placements_;
    ++preemptions_;
    ++preemptionsThisQuantum_;
    return true;
}

void
FleetController::splitBudget()
{
    power_.split(views_, budgets_, ThreadPool::global());
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        nodes_[i]->overridePowerBudgetW(budgets_[i]);
}

void
FleetController::shiftLoad()
{
    if (opts_.qosLoadShiftFrac <= 0.0 || quantum_ == 0)
        return;

    // Parallel scan: each replica's upcoming offered load (a pattern
    // lookup) into its own loads_ entry.
    std::vector<std::unique_ptr<ClusterNode>> &nodes = nodes_;
    ThreadPool::global().parallelChunks(
        nodes.size(), kNodeChunk,
        [this, &nodes](std::size_t, std::size_t begin,
                       std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                loads_[i] = nodes[i]->nextLoadFraction();
        });

    // Serial pairing and commit in node-index order. Donors: replicas
    // that violated QoS last quantum. Receiver: the replica with the
    // lowest upcoming offered load that is itself healthy (ties to
    // the lowest index). All replicas serve the same LC service
    // (identical calibrated maxQps), so load fractions transfer
    // one-to-one.
    std::size_t receiver = PlacementPolicy::kNoNode;
    double receiverLoad = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (views_[i].qosViolated)
            continue;
        if (receiver == PlacementPolicy::kNoNode ||
            loads_[i] < receiverLoad) {
            receiver = i;
            receiverLoad = loads_[i];
        }
    }
    if (receiver == PlacementPolicy::kNoNode)
        return; // every replica is violating; nowhere to shed to

    loadExtra_.assign(nodes_.size(), 0.0);
    bool shifted = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!views_[i].qosViolated || i == receiver)
            continue;
        const double moved = loads_[i] * opts_.qosLoadShiftFrac;
        if (moved <= 0.0)
            continue;
        nodes_[i]->overrideLoadFraction(loads_[i] - moved);
        loadExtra_[receiver] += moved;
        ++loadShifts_;
        shifted = true;
    }
    if (shifted) {
        nodes_[receiver]->overrideLoadFraction(
            loads_[receiver] + loadExtra_[receiver]);
    }
}

std::uint64_t
FleetController::nodeMemoKey(std::size_t i) const
{
    // Job-mix signature: per-slot occupancy plus profile-*name*
    // hashes in slot order (names replay across runs; pointers do
    // not). The |1 keeps an occupied slot's contribution distinct
    // from the vacant marker even for a pathological zero name hash.
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t s = 0; s < slotsPerNode_; ++s) {
        const RunningJob &r = running_[i * slotsPerNode_ + s];
        const std::uint64_t v =
            r.account < 0 ? 0
                          : (memoHashString(r.profile.name) | 1);
        h = memoHashCombine(h, v);
    }
    h = memoHashCombine(
        h, memoBin(nodes_[i]->nextLoadFraction(),
                   std::max<std::size_t>(opts_.memoLoadBins, 1)));
    h = memoHashCombine(
        h, memoBin(budgets_[i] / nodeMaxPowerW_,
                   std::max<std::size_t>(opts_.memoBudgetBins, 1)));
    return h;
}

void
FleetController::memoSeedNodes()
{
    if (!memoEnabled())
        return;

    // Parallel scan: quantize each node's upcoming conditions into a
    // memo key and probe the table read-only — every store happened
    // in an earlier quantum's serial merge, so all workers see the
    // same committed state. A hit installs the sibling's converged
    // point into that node's scheduler (node-local state), which is
    // order-independent across workers.
    std::vector<std::unique_ptr<ClusterNode>> &nodes = nodes_;
    ThreadPool::global().parallelChunks(
        nodes.size(), kNodeChunk,
        [this, &nodes](std::size_t, std::size_t begin,
                       std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                memoKeys_[i] = nodeMemoKey(i);
                const std::uint16_t *hit = memo_.find(memoKeys_[i]);
                memoHit_[i] = hit != nullptr;
                if (hit) {
                    nodes[i]->scheduler().setMemoSeed(hit,
                                                      slotsPerNode_);
                }
            }
        });

    // Serial tally in node order: counters stay deterministic at any
    // pool width.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        ++memoLookups_;
        memoHits_ += memoHit_[i];
    }
}

void
FleetController::memoPopulate()
{
    if (!memoEnabled())
        return;

    // Parallel scan: flag nodes whose step converged a fresh full
    // decision (reads node-local scheduler state only).
    std::vector<std::unique_ptr<ClusterNode>> &nodes = nodes_;
    ThreadPool::global().parallelChunks(
        nodes.size(), kNodeChunk,
        [this, &nodes](std::size_t, std::size_t begin,
                       std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                const telemetry::DecisionPath p =
                    nodes[i]->scheduler().lastDecisionPath();
                memoStore_[i] =
                    p == telemetry::DecisionPath::Full ||
                    p == telemetry::DecisionPath::MemoSeeded;
            }
        });

    // Serial merge in strict node-index order: colliding signatures
    // resolve to the highest node index every time, so the table —
    // and every decision seeded from it — is bitwise identical at
    // any CS_POOL_THREADS.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!memoStore_[i])
            continue;
        const std::vector<std::uint16_t> &point =
            nodes_[i]->scheduler().cachedPoint();
        if (point.size() == slotsPerNode_)
            memo_.store(memoKeys_[i], point.data());
    }
}

void
FleetController::gatherQuantum()
{
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        ColocationRun &run = nodes_[i]->run();
        const double budget = run.lastPowerBudgetW();
        const double power = run.lastMeasurement().totalPower;
        clusterBudgetSum_ += budget;
        clusterPowerSum_ += power;
        nodeBudgetSum_[i] += budget;
        nodePowerSum_[i] += power;
        const double jobGmean = nodes_[i]->lastJobGmeanBips();
        if (jobGmean > 0.0) {
            nodeJobGmeanSum_[i] += jobGmean;
            ++nodeJobGmeanCount_[i];
        }

        // Charge each occupied slot's consumption to its account:
        // width-weighted core-seconds (totalWidth/18 — a full {6,6,6}
        // core is 1.0, a gated core 0) and the instructions retired.
        const SliceDecision &dec = run.lastDecision();
        const SliceMeasurement &m = run.lastMeasurement();
        const std::vector<std::int32_t> &accounts =
            run.slotAccounts();
        for (std::size_t s = 0; s < accounts.size(); ++s) {
            if (accounts[s] < 0)
                continue;
            const bool active =
                s < dec.batchActive.size() && dec.batchActive[s];
            const double coreFrac = active
                ? static_cast<double>(
                      dec.batchConfigs[s].core().totalWidth()) / 18.0
                : 0.0;
            const double bips =
                s < m.batchBips.size() ? m.batchBips[s] : 0.0;
            ledger_.chargeUsage(
                static_cast<std::size_t>(accounts[s]), coreFrac,
                timesliceSec_, bips * timesliceSec_, bips);
        }

        if (nodeSinks_[i] && opts_.sink) {
            const std::vector<telemetry::QuantumRecord> &recs =
                nodeSinks_[i]->records();
            for (std::size_t r = drained_[i]; r < recs.size(); ++r)
                opts_.sink->record(recs[r]);
            drained_[i] = recs.size();
        }
    }
}

void
FleetController::stepQuantum()
{
    CS_ASSERT(!done(), "stepQuantum() past the configured day");
    // Decay usage and recompute fair-share once, up front, so
    // admission, ordering, and preemption all see factors reflecting
    // consumption through the previous quantum.
    ledger_.beginQuantum();
    applyChurn();
    gatherViews();
    placePending();
    splitBudget();
    shiftLoad();
    memoSeedNodes();

    // The parallel region: nodes are fully independent (each owns its
    // sim, scheduler, and stepper), so any pool width produces the
    // same per-node state; the pool's nested-region support lets each
    // node's own SGD/DDS parallelism run inside this loop.
    std::vector<std::unique_ptr<ClusterNode>> &nodes = nodes_;
    ThreadPool::global().parallelFor(
        nodes.size(),
        [&nodes](std::size_t i) { nodes[i]->step(); });

    memoPopulate();
    gatherQuantum();
    ++quantum_;
}

FleetSummary
FleetController::run()
{
    while (!done())
        stepQuantum();
    return summary();
}

FleetSummary
FleetController::summary()
{
    const std::size_t n = nodes_.size();
    const double q =
        static_cast<double>(std::max<std::size_t>(quantum_, 1));

    FleetSummary s;
    s.numNodes = n;
    s.quanta = quantum_;
    s.rackBudgetW = power_.options().rackBudgetW;
    s.placementPolicy = placement_.name();
    s.powerPolicy = powerPolicyName(power_.policy());
    s.arrivals = arrivals_;
    s.droppedArrivals = droppedArrivals_;
    s.droppedQueued = droppedQueued_;
    s.departures = departures_;
    s.placements = placements_;
    s.preemptions = preemptions_;
    s.placementStalls = placementStalls_;
    s.loadShifts = loadShifts_;

    for (std::size_t i = 0; i < n; ++i) {
        const CuttleSysScheduler &sched = nodes_[i]->scheduler();
        s.fastPathHits +=
            static_cast<std::size_t>(sched.fastPathHits());
        s.fullQuanta +=
            static_cast<std::size_t>(sched.fullQuanta());
        s.memoSeededQuanta +=
            static_cast<std::size_t>(sched.memoSeededQuanta());
    }
    const std::size_t decided = s.fastPathHits + s.fullQuanta;
    s.fastPathHitRate = decided
        ? static_cast<double>(s.fastPathHits) /
            static_cast<double>(decided)
        : 0.0;
    s.memoLookups = memoLookups_;
    s.memoHits = memoHits_;
    s.memoStores = static_cast<std::size_t>(memo_.stores());

    if (dagEnabled()) {
        s.workflowsSubmitted = workflowsSubmitted_;
        s.workflowsCompleted =
            static_cast<std::size_t>(engine_->completed());
        s.workflowsDropped = workflowsDropped_;
        s.dagTasksCompleted =
            static_cast<std::size_t>(engine_->tasksCompleted());
        s.artifactHits = artifactHits_;
        s.artifactMisses = artifactMisses_;
        for (const dag::ArtifactCache &c : caches_) {
            s.artifactEvictions +=
                static_cast<std::size_t>(c.evictions());
        }
        const std::size_t probes = artifactHits_ + artifactMisses_;
        s.artifactHitRate = probes
            ? static_cast<double>(artifactHits_) /
                static_cast<double>(probes)
            : 0.0;
        s.transferBytes = transferBytes_;
        double logMakespanSum = 0.0;
        double makespanSum = 0.0;
        std::size_t doneWorkflows = 0;
        for (std::size_t a = 0; a < ledger_.numAccounts(); ++a) {
            const AccountUsage &u = ledger_.usage(a);
            logMakespanSum += u.logMakespanSum;
            makespanSum += u.makespanQuantaSum;
            doneWorkflows += u.workflowsCompleted;
        }
        s.gmeanMakespanQuanta = doneWorkflows
            ? std::exp(logMakespanSum /
                       static_cast<double>(doneWorkflows))
            : 0.0;
        s.meanMakespanQuanta = doneWorkflows
            ? makespanSum / static_cast<double>(doneWorkflows)
            : 0.0;
    }

    s.accounts.reserve(ledger_.numAccounts());
    for (std::size_t a = 0; a < ledger_.numAccounts(); ++a) {
        const TenantSpec &t = ledger_.tenant(a);
        const AccountUsage &u = ledger_.usage(a);
        AccountSummary as;
        as.name = t.name;
        as.qosClass = t.qosClass;
        as.shares = t.shares;
        as.arrivalWeight = t.arrivalWeight;
        as.arrivals = u.arrivals;
        as.placements = u.placements;
        as.dropsNew = u.dropsNew;
        as.dropsQueued = u.dropsQueued;
        as.preemptionsWon = u.preemptionsWon;
        as.preemptionsSuffered = u.preemptionsSuffered;
        as.coreSeconds = u.coreSeconds;
        as.ginstr = u.ginstr;
        as.gmeanBips = ledger_.gmeanBips(a);
        as.fairShare = ledger_.fairShare(a);
        as.workflowsCompleted = u.workflowsCompleted;
        as.gmeanMakespanQuanta = ledger_.gmeanMakespan(a);
        s.accounts.push_back(std::move(as));
    }
    s.meanClusterPowerW = clusterPowerSum_ / q;
    s.meanHeadroomW = (clusterBudgetSum_ - clusterPowerSum_) / q;

    std::size_t totalViolations = 0;
    double logGmeanSum = 0.0;
    double logJobGmeanSum = 0.0;
    s.nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const RunResult &r = nodes_[i]->result();
        NodeSummary ns;
        ns.node = i;
        ns.quanta = quantum_;
        ns.qosViolations = r.qosViolations;
        ns.qosPct = 100.0 *
            (1.0 - static_cast<double>(r.qosViolations) / q);
        ns.meanGmeanBips = r.meanGmeanBips;
        ns.meanJobGmeanBips = nodeJobGmeanCount_[i] > 0
            ? nodeJobGmeanSum_[i] /
                static_cast<double>(nodeJobGmeanCount_[i])
            : 0.0;
        ns.meanPowerW = r.meanPowerW;
        ns.meanBudgetW = nodeBudgetSum_[i] / q;
        ns.meanHeadroomW =
            (nodeBudgetSum_[i] - nodePowerSum_[i]) / q;
        ns.totalBatchInstructions = r.totalBatchInstructions;
        ns.arrivals = r.jobArrivals;
        ns.departures = r.jobDepartures;
        ns.invariantViolations = r.invariantViolations;
        s.nodes.push_back(ns);

        totalViolations += r.qosViolations;
        logGmeanSum += std::log(std::max(r.meanGmeanBips, 1e-3));
        logJobGmeanSum +=
            std::log(std::max(ns.meanJobGmeanBips, 1e-3));
        s.totalBatchInstructions += r.totalBatchInstructions;
    }
    s.clusterQosPct = 100.0 *
        (1.0 - static_cast<double>(totalViolations) /
             (q * static_cast<double>(n)));
    s.gmeanBatchBips = std::exp(logGmeanSum / static_cast<double>(n));
    s.jobGmeanBips =
        std::exp(logJobGmeanSum / static_cast<double>(n));
    return s;
}

} // namespace cluster
} // namespace cuttlesys
