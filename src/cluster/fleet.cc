#include "cluster/fleet.hh"

#include <algorithm>
#include <cmath>

#include "apps/mix.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace cuttlesys {
namespace cluster {

namespace {

/** Nodes per parallel block (see ThreadPool::parallelChunks). */
constexpr std::size_t kNodeChunk = 32;

} // namespace

FleetController::FleetController(const SystemParams &params,
                                 const TrainingTables &tables,
                                 const AppProfile &lc_service,
                                 const std::vector<AppProfile> &batch_pool,
                                 double node_max_power_w,
                                 PlacementPolicy &placement,
                                 FleetOptions opts)
    : opts_(std::move(opts)), placement_(placement),
      // The churn stream gets its own seed domain so reconfiguring
      // the fleet (scenario, node parameters) never perturbs it, and
      // vice versa.
      churn_(batch_pool, opts_.numNodes,
             opts_.seed ^ 0x94d049bb133111ebULL, opts_.churn),
      power_(opts_.powerPolicy,
             PowerManagerOptions{
                 .rackBudgetW = opts_.rackBudgetFrac *
                     static_cast<double>(opts_.numNodes) *
                     node_max_power_w,
                 .nodeFloorW = opts_.nodeFloorFrac * node_max_power_w,
                 .nodeCapW = node_max_power_w,
                 .qosBoostW = opts_.qosBoostW}),
      nodeMaxPowerW_(node_max_power_w),
      churnArenas_(ThreadPool::global().slotCount())
{
    CS_ASSERT(opts_.numNodes > 0, "fleet needs at least one node");
    CS_ASSERT(opts_.batchSlotsPerNode > 0, "nodes need batch slots");
    CS_ASSERT(lc_service.maxQps > 0.0,
              "LC service must be calibrated (run calibrateMaxQps)");
    CS_ASSERT(opts_.loadScaleMin > 0.0 &&
                  opts_.loadScaleMax >= opts_.loadScaleMin,
              "bad load-scale spread");

    const std::size_t n = opts_.numNodes;
    numQuanta_ = opts_.scenario.quanta(params.timesliceSec);

    // One master stream hands every node its mix seed and sim seed,
    // so the whole fleet is a pure function of opts.seed.
    Rng master(opts_.seed);

    nodeSinks_.reserve(n);
    nodes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t mixSeed = master();
        const std::uint64_t simSeed = master();

        WorkloadMix mix;
        mix.lc = lc_service;
        mix.batch =
            makeBatchMix(batch_pool, opts_.batchSlotsPerNode, mixSeed);

        // Replicas of one service behind a load balancer: same day,
        // staggered phase, heterogeneous popularity. Node 0 carries
        // the largest amplitude so index-blind first-fit placement
        // piles work exactly where load is highest.
        const double phase = opts_.staggerPhases
            ? opts_.scenario.daySeconds * static_cast<double>(i) /
                static_cast<double>(n)
            : 0.0;
        const double scale = n > 1
            ? opts_.loadScaleMax -
                (opts_.loadScaleMax - opts_.loadScaleMin) *
                    static_cast<double>(i) /
                    static_cast<double>(n - 1)
            : opts_.loadScaleMax;

        DriverOptions driver;
        driver.durationSec = opts_.scenario.daySeconds;
        driver.loadPattern = opts_.scenario.loadPattern(phase, scale);
        driver.powerPattern = opts_.scenario.powerPattern();
        driver.maxPowerW = node_max_power_w;
        driver.validateDecisions = opts_.validateDecisions;
        driver.keepSliceRecords = opts_.keepSliceRecords;
        if (opts_.sink) {
            nodeSinks_.push_back(
                std::make_unique<telemetry::MemorySink>());
            driver.traceSink = nodeSinks_.back().get();
        } else {
            nodeSinks_.push_back(nullptr);
        }

        nodes_.push_back(std::make_unique<ClusterNode>(
            params, tables, std::move(mix), simSeed,
            std::move(driver), i, opts_.scheduler));
    }

    drained_.assign(n, 0);
    nodeBudgetSum_.assign(n, 0.0);
    nodePowerSum_.assign(n, 0.0);
    nodeJobGmeanSum_.assign(n, 0.0);
    nodeJobGmeanCount_.assign(n, 0);
    churnPlan_.resize(n);
    views_.resize(n);
    budgets_.reserve(n);
    loads_.assign(n, 0.0);
    loadExtra_.assign(n, 0.0);

    // The FIFO queue is bounded by the admission cap, but its backing
    // vector can hold up to a compaction cycle's worth of placed
    // heads in front of the cap plus one quantum of admissions;
    // reserving that bound up front makes the steady-state quantum
    // provably realloc-free.
    pending_.reserve(2 * opts_.churn.maxPendingJobs + n);

    // Pre-grow every worker's staging arena to the worst case — one
    // worker staging the entire fleet's departure scan. Which worker
    // runs which block varies run to run (never the results, only the
    // addresses), so without this the arenas' high-water marks keep
    // shifting with the schedule and an unlucky quantum still touches
    // the heap; after this reset every staging alloc is a pure bump.
    for (std::size_t s = 0; s < churnArenas_.size(); ++s) {
        churnArenas_.at(s).alloc<std::uint16_t>(
            n * opts_.batchSlotsPerNode);
    }
    churnArenas_.resetAll();
}

FleetController::~FleetController() = default;

void
FleetController::applyChurn()
{
    // Parallel scan: each block stages its nodes' departure slots in
    // its worker's arena and records the plan entry — the draws are
    // pure functions of (seed, quantum, node, slot), so neither the
    // block schedule nor the worker identity can change them.
    std::vector<std::unique_ptr<ClusterNode>> &nodes = nodes_;
    churnArenas_.resetAll();
    ThreadPool::global().parallelChunks(
        nodes.size(), kNodeChunk,
        [this, &nodes](std::size_t, std::size_t begin,
                       std::size_t end) {
            ScratchArena &arena =
                churnArenas_.at(ThreadPool::currentSlot());
            for (std::size_t i = begin; i < end; ++i) {
                const ClusterNode &node = *nodes[i];
                const std::size_t slots = node.numBatchSlots();
                std::uint16_t *stage =
                    arena.alloc<std::uint16_t>(slots);
                std::uint16_t count = 0;
                for (std::size_t s = 0; s < slots; ++s) {
                    if (node.slotPlannedOccupied(s) &&
                        churn_.departs(quantum_, i, s)) {
                        stage[count++] =
                            static_cast<std::uint16_t>(s);
                    }
                }
                churnPlan_[i].departSlots = stage;
                churnPlan_[i].numDeparts = count;
                churnPlan_[i].arrivals = static_cast<std::uint16_t>(
                    churn_.arrivalsAt(quantum_, i));
            }
        });

    // Serial merge in node-index order: queue the departure events
    // and admit arrivals into the FIFO queue (drops included) exactly
    // as a sequential controller would.
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const ChurnNodePlan &plan = churnPlan_[i];
        for (std::uint16_t d = 0; d < plan.numDeparts; ++d) {
            JobEvent event;
            event.slot = plan.departSlots[d];
            event.departure = true;
            nodes_[i]->queueJobEvent(event);
            ++departures_;
        }
        for (std::uint16_t k = 0; k < plan.arrivals; ++k) {
            if (pendingJobs() >= opts_.churn.maxPendingJobs) {
                ++droppedArrivals_;
                continue;
            }
            PendingJob job;
            job.profile = churn_.drawJobAt(quantum_, i, k);
            job.submitSlice = quantum_;
            pending_.push_back(std::move(job));
            ++arrivals_;
        }
    }
}

void
FleetController::gatherViews()
{
    // Disjoint per-node writes over read-only node state; freeSlots
    // is an O(1) counter, so the whole gather is O(nodes).
    std::vector<std::unique_ptr<ClusterNode>> &nodes = nodes_;
    ThreadPool::global().parallelChunks(
        nodes.size(), kNodeChunk,
        [this, &nodes](std::size_t, std::size_t begin,
                       std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                nodes[i]->view(views_[i]);
        });
}

void
FleetController::placePending()
{
    if (pendingHead_ == pending_.size()) {
        pending_.clear();
        pendingHead_ = 0;
        return;
    }

    // Parallel candidate scoring over the planned-occupancy views,
    // then a single-threaded FIFO commit through the round's heap:
    // every choice (and every view booking) is bitwise what the
    // serial per-job rescan would produce, at O(log N) per job
    // instead of O(N).
    round_.begin(placement_, views_, ThreadPool::global());
    while (pendingHead_ < pending_.size()) {
        const std::size_t target = round_.placeOne();
        if (target == PlacementPolicy::kNoNode)
            break; // FIFO: the head job blocks the queue
        CS_ASSERT(target < nodes_.size(), "policy chose a bad node");
        ClusterNode &node = *nodes_[target];
        const std::size_t slot = node.firstVacantSlot();
        CS_ASSERT(slot < node.numBatchSlots(),
                  "policy placed a job on a full node");
        JobEvent event;
        event.slot = slot;
        event.arrival = pending_[pendingHead_].profile;
        node.queueJobEvent(event);
        ++placements_;
        ++pendingHead_;
    }
    placementStalls_ += pendingJobs();

    if (pendingHead_ == pending_.size()) {
        pending_.clear();
        pendingHead_ = 0;
    } else if (pendingHead_ >= 32 &&
               pendingHead_ * 2 >= pending_.size()) {
        pending_.erase(pending_.begin(),
                       pending_.begin() +
                           static_cast<std::ptrdiff_t>(pendingHead_));
        pendingHead_ = 0;
    }
}

void
FleetController::splitBudget()
{
    power_.split(views_, budgets_, ThreadPool::global());
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        nodes_[i]->overridePowerBudgetW(budgets_[i]);
}

void
FleetController::shiftLoad()
{
    if (opts_.qosLoadShiftFrac <= 0.0 || quantum_ == 0)
        return;

    // Parallel scan: each replica's upcoming offered load (a pattern
    // lookup) into its own loads_ entry.
    std::vector<std::unique_ptr<ClusterNode>> &nodes = nodes_;
    ThreadPool::global().parallelChunks(
        nodes.size(), kNodeChunk,
        [this, &nodes](std::size_t, std::size_t begin,
                       std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                loads_[i] = nodes[i]->nextLoadFraction();
        });

    // Serial pairing and commit in node-index order. Donors: replicas
    // that violated QoS last quantum. Receiver: the replica with the
    // lowest upcoming offered load that is itself healthy (ties to
    // the lowest index). All replicas serve the same LC service
    // (identical calibrated maxQps), so load fractions transfer
    // one-to-one.
    std::size_t receiver = PlacementPolicy::kNoNode;
    double receiverLoad = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (views_[i].qosViolated)
            continue;
        if (receiver == PlacementPolicy::kNoNode ||
            loads_[i] < receiverLoad) {
            receiver = i;
            receiverLoad = loads_[i];
        }
    }
    if (receiver == PlacementPolicy::kNoNode)
        return; // every replica is violating; nowhere to shed to

    loadExtra_.assign(nodes_.size(), 0.0);
    bool shifted = false;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!views_[i].qosViolated || i == receiver)
            continue;
        const double moved = loads_[i] * opts_.qosLoadShiftFrac;
        if (moved <= 0.0)
            continue;
        nodes_[i]->overrideLoadFraction(loads_[i] - moved);
        loadExtra_[receiver] += moved;
        ++loadShifts_;
        shifted = true;
    }
    if (shifted) {
        nodes_[receiver]->overrideLoadFraction(
            loads_[receiver] + loadExtra_[receiver]);
    }
}

void
FleetController::gatherQuantum()
{
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        ColocationRun &run = nodes_[i]->run();
        const double budget = run.lastPowerBudgetW();
        const double power = run.lastMeasurement().totalPower;
        clusterBudgetSum_ += budget;
        clusterPowerSum_ += power;
        nodeBudgetSum_[i] += budget;
        nodePowerSum_[i] += power;
        const double jobGmean = nodes_[i]->lastJobGmeanBips();
        if (jobGmean > 0.0) {
            nodeJobGmeanSum_[i] += jobGmean;
            ++nodeJobGmeanCount_[i];
        }

        if (nodeSinks_[i] && opts_.sink) {
            const std::vector<telemetry::QuantumRecord> &recs =
                nodeSinks_[i]->records();
            for (std::size_t r = drained_[i]; r < recs.size(); ++r)
                opts_.sink->record(recs[r]);
            drained_[i] = recs.size();
        }
    }
}

void
FleetController::stepQuantum()
{
    CS_ASSERT(!done(), "stepQuantum() past the configured day");
    applyChurn();
    gatherViews();
    placePending();
    splitBudget();
    shiftLoad();

    // The parallel region: nodes are fully independent (each owns its
    // sim, scheduler, and stepper), so any pool width produces the
    // same per-node state; the pool's nested-region support lets each
    // node's own SGD/DDS parallelism run inside this loop.
    std::vector<std::unique_ptr<ClusterNode>> &nodes = nodes_;
    ThreadPool::global().parallelFor(
        nodes.size(),
        [&nodes](std::size_t i) { nodes[i]->step(); });

    gatherQuantum();
    ++quantum_;
}

FleetSummary
FleetController::run()
{
    while (!done())
        stepQuantum();
    return summary();
}

FleetSummary
FleetController::summary()
{
    const std::size_t n = nodes_.size();
    const double q =
        static_cast<double>(std::max<std::size_t>(quantum_, 1));

    FleetSummary s;
    s.numNodes = n;
    s.quanta = quantum_;
    s.rackBudgetW = power_.options().rackBudgetW;
    s.placementPolicy = placement_.name();
    s.powerPolicy = powerPolicyName(power_.policy());
    s.arrivals = arrivals_;
    s.droppedArrivals = droppedArrivals_;
    s.departures = departures_;
    s.placements = placements_;
    s.placementStalls = placementStalls_;
    s.loadShifts = loadShifts_;
    s.meanClusterPowerW = clusterPowerSum_ / q;
    s.meanHeadroomW = (clusterBudgetSum_ - clusterPowerSum_) / q;

    std::size_t totalViolations = 0;
    double logGmeanSum = 0.0;
    double logJobGmeanSum = 0.0;
    s.nodes.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const RunResult &r = nodes_[i]->result();
        NodeSummary ns;
        ns.node = i;
        ns.quanta = quantum_;
        ns.qosViolations = r.qosViolations;
        ns.qosPct = 100.0 *
            (1.0 - static_cast<double>(r.qosViolations) / q);
        ns.meanGmeanBips = r.meanGmeanBips;
        ns.meanJobGmeanBips = nodeJobGmeanCount_[i] > 0
            ? nodeJobGmeanSum_[i] /
                static_cast<double>(nodeJobGmeanCount_[i])
            : 0.0;
        ns.meanPowerW = r.meanPowerW;
        ns.meanBudgetW = nodeBudgetSum_[i] / q;
        ns.meanHeadroomW =
            (nodeBudgetSum_[i] - nodePowerSum_[i]) / q;
        ns.totalBatchInstructions = r.totalBatchInstructions;
        ns.arrivals = r.jobArrivals;
        ns.departures = r.jobDepartures;
        ns.invariantViolations = r.invariantViolations;
        s.nodes.push_back(ns);

        totalViolations += r.qosViolations;
        logGmeanSum += std::log(std::max(r.meanGmeanBips, 1e-3));
        logJobGmeanSum +=
            std::log(std::max(ns.meanJobGmeanBips, 1e-3));
        s.totalBatchInstructions += r.totalBatchInstructions;
    }
    s.clusterQosPct = 100.0 *
        (1.0 - static_cast<double>(totalViolations) /
             (q * static_cast<double>(n)));
    s.gmeanBatchBips = std::exp(logGmeanSum / static_cast<double>(n));
    s.jobGmeanBips =
        std::exp(logJobGmeanSum / static_cast<double>(n));
    return s;
}

} // namespace cluster
} // namespace cuttlesys
