/**
 * @file
 * DAG batch workflows: specs, content-addressed artifacts, and the
 * frontier-tracking WorkflowEngine.
 *
 * CuttleSys's churned batch jobs were anonymous single-slot tenants;
 * real batch work arrives as small DAGs — a chain of transforms, a
 * diamond, a map/reduce fan — whose tasks *produce and consume named
 * artifacts*. This file models that class (CORD's structured batch
 * jobs, PAPERS.md) the TaskVine way (vine_cached_name.c): an
 * artifact's identity is a content hash — for a root task, the hash
 * of its workflow instance's seed folded with the task's name; for a
 * derived task, the hash of the task's name folded with its input
 * artifact ids in input order. Two identical computations on
 * identical inputs therefore name the same artifact, which is what
 * lets a per-node ArtifactCache (artifact_cache.hh) answer "does this
 * node already hold this task's inputs?" and turn placement into a
 * data-gravity problem (scorer.hh).
 *
 * The WorkflowEngine tracks every live workflow's frontier: a task is
 * *released* to the cluster's pending queue only when all of its
 * input artifacts have been published by completed producers. All
 * engine mutation happens in the fleet controller's single-threaded
 * merge phases, in deterministic (node, slot) completion order, so
 * release order — and therefore every arrival sequence number a
 * released task draws — replays bitwise at any pool width. Nothing
 * here reads a clock or an RNG: every draw a workflow instance needs
 * (task duration jitter, profile picks) is a pure counter hash of the
 * instance seed the churn engine handed it (cslint's fastpath-purity
 * rule gates this file's commit path).
 *
 * Cycle rejection happens at construction: validateWorkflowSpec()
 * runs Kahn's algorithm over the task graph and rejects any spec
 * whose edges do not admit a topological order, so the engine never
 * has to defend against a workflow that can deadlock its own
 * frontier.
 */

#ifndef CUTTLESYS_CLUSTER_DAG_WORKFLOW_HH
#define CUTTLESYS_CLUSTER_DAG_WORKFLOW_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cuttlesys {
namespace cluster {
namespace dag {

/** Content hash naming one produced artifact (0 = invalid). */
using ArtifactId = std::uint64_t;

/** One named input/output edge: an artifact and its modeled size. */
struct ArtifactRef
{
    ArtifactId id = 0;
    double bytes = 0.0;
};

/** One task of a workflow template. */
struct TaskSpec
{
    std::string name;
    /** Producer task indices this task consumes (any order; the spec
     *  validator rejects cycles and out-of-range edges). */
    std::vector<std::uint16_t> inputs;
    /** Size of this task's single output artifact. */
    double outputBytes = 16.0 * 1024.0 * 1024.0;
    /** Service time floor, in cluster quanta (>= 1 enforced). */
    std::uint16_t baseDurationQuanta = 4;
    /** Uniform per-instance extra duration in [0, jitter], drawn from
     *  the instance seed's counter hash. */
    std::uint16_t durationJitterQuanta = 4;
};

/** One workflow template churned arrivals are instantiated from. */
struct WorkflowSpec
{
    std::string name;
    std::vector<TaskSpec> tasks;
};

/**
 * Validate @p spec: non-empty, every input edge in range and not a
 * self-loop, and the edge set acyclic (Kahn). Returns false — with a
 * reason in @p why when non-null — instead of asserting, so callers
 * building specs from external input can reject them gracefully; the
 * WorkflowEngine constructor asserts on an invalid template.
 */
bool validateWorkflowSpec(const WorkflowSpec &spec,
                          std::string *why = nullptr);

/**
 * The built-in template library: "single" (the degenerate one-task
 * DAG, equivalent to a legacy churned job), "chain3", "diamond4"
 * (one source, two parallel transforms, one join), and "mapred6"
 * (source, 4-way map, reduce).
 */
std::vector<WorkflowSpec> standardWorkflowTemplates();

/** Content id of a root task's output (no inputs): folds the template
 *  name, the task name, and the workflow instance seed — distinct
 *  instances produce distinct root artifacts. */
ArtifactId artifactIdRoot(const std::string &template_name,
                          const std::string &task_name,
                          std::uint64_t instance_seed);

/** Content id of a derived task's output: folds the task name with
 *  the input artifact ids in input order — identical computations on
 *  identical inputs name the same artifact (TaskVine's
 *  vine_cached_name rule). */
ArtifactId artifactIdDerived(const std::string &task_name,
                             const std::vector<ArtifactRef> &inputs);

/** DAG-workflow tuning carried inside FleetOptions. */
struct DagOptions
{
    /** Master switch. False (the default) runs the legacy fleet
     *  bitwise: no engine, no caches, no extra churn draws consumed. */
    bool enable = false;

    /** Live-workflow pool size; an arrival finding the pool full is
     *  dropped (counted, never queued). */
    std::size_t maxLiveWorkflows = 64;

    /** Per-node artifact cache capacity (bytes and entries). */
    double cacheCapacityBytes = 256.0 * 1024.0 * 1024.0;
    std::size_t cacheMaxEntries = 64;

    /** Modeled interconnect bandwidth: a placement whose inputs are
     *  not resident charges ceil(missingBytes / this) extra quanta of
     *  effective service time. Sized so a fully-remote placement of
     *  the largest template artifact costs one quantum — the stall
     *  delays the workflow without turning the slot into a multi-
     *  quantum phantom executor, which would skew the batch-Ginstr
     *  comparison between the locality A/B arms. */
    double transferBytesPerQuantum = 128.0 * 1024.0 * 1024.0;

    /** Locality term weights (watts of headroom at their reference
     *  point, like every other placement knob): the bonus a node with
     *  all inputs resident earns, and the charge a fully-remote node
     *  pays — linear in the resident byte fraction between them. */
    double localityBonusW = 24.0;
    double transferPenaltyW = 48.0;

    /** False runs the locality-blind A/B arm: transfers are still
     *  modeled and charged, but placement ignores data gravity. */
    bool localityAware = true;

    /** Workflow templates; empty = standardWorkflowTemplates(). */
    std::vector<WorkflowSpec> templates;
};

/**
 * Frontier tracker for all live workflow instances.
 *
 * The fleet controller admits an instance per churned workflow
 * arrival (admit), enqueues the returned ready tasks as pending
 * placements, reports placements/preemptions/completions back, and
 * collects newly released successors and finished workflows. All
 * storage — the instance pool and every per-task vector — reaches
 * its high-water size at construction / first admits, so the
 * steady-state controller quantum stays heap-free.
 */
class WorkflowEngine
{
  public:
    /** admit() result when the live pool is full. */
    static constexpr std::size_t kNoWorkflow =
        static_cast<std::size_t>(-1);

    /** One released task: a (live slot, task index) pair. */
    struct ReadyTask
    {
        std::uint32_t workflow = 0;
        std::uint16_t task = 0;
    };

    /** One finished workflow (for the ledger and the trace). */
    struct Completion
    {
        std::uint64_t workflowId = 0;
        std::int32_t account = 0;
        std::uint64_t makespanQuanta = 0; //!< submit -> last departure
    };

    /**
     * @param templates validated workflow templates (asserted here)
     * @param max_live live-instance pool size
     */
    WorkflowEngine(std::vector<WorkflowSpec> templates,
                   std::size_t max_live);

    std::size_t numTemplates() const { return templates_.size(); }
    const WorkflowSpec &spec(std::size_t tpl) const
    {
        return templates_[tpl];
    }
    std::size_t maxTasksPerWorkflow() const { return maxTasks_; }
    std::size_t maxLiveWorkflows() const { return pool_.size(); }
    /** Upper bound on simultaneously released tasks (queue sizing). */
    std::size_t capacityTasks() const
    {
        return pool_.size() * maxTasks_;
    }
    std::size_t liveWorkflows() const { return live_; }

    /**
     * Instantiate template @p tpl as a live workflow. Computes every
     * task's instance duration and artifact id (in topological
     * order), releases the zero-input frontier into @p ready_out, and
     * returns the live slot — or kNoWorkflow when the pool is full
     * (nothing released, nothing consumed).
     */
    std::size_t admit(std::size_t tpl, std::uint64_t seed,
                      std::int32_t account, std::uint64_t quantum,
                      std::uint64_t workflow_id,
                      std::vector<ReadyTask> &ready_out);

    /** Pure counter hash of (instance seed, task, salt): the draw
     *  source for a task's profile pick and residual seed. */
    std::uint64_t taskDrawHash(std::size_t wf, std::size_t task,
                               std::uint64_t salt) const;

    /** This instance's drawn service time for @p task (>= 1). */
    std::uint16_t durationQuanta(std::size_t wf,
                                 std::size_t task) const;

    /** Resolved input artifacts of @p task, in input order. */
    const std::vector<ArtifactRef> &taskInputs(std::size_t wf,
                                               std::size_t task) const;

    /** The artifact @p task publishes on completion. */
    ArtifactRef taskOutput(std::size_t wf, std::size_t task) const;

    std::int32_t account(std::size_t wf) const;
    std::uint64_t workflowId(std::size_t wf) const;
    const std::string &taskName(std::size_t wf,
                                std::size_t task) const;

    /** A released task left the pending queue for a node. */
    void onTaskPlaced(std::size_t wf, std::size_t task);

    /** A running task was evicted; it re-enters the pending queue and
     *  will restart (and re-pay its transfers) when re-placed. */
    void onTaskPreempted(std::size_t wf, std::size_t task);

    /**
     * A running task departed at @p quantum: successors whose inputs
     * are now all published are appended to @p ready_out in task
     * order. Returns true when this completion finished the whole
     * workflow — @p done_out is filled and the live slot freed.
     */
    bool onTaskCompleted(std::size_t wf, std::size_t task,
                         std::uint64_t quantum,
                         std::vector<ReadyTask> &ready_out,
                         Completion &done_out);

    // Lifetime counters (serial-merge mutation only).
    std::uint64_t admitted() const { return admitted_; }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t tasksCompleted() const { return tasksCompleted_; }

  private:
    enum class TaskState : std::uint8_t
    {
        Blocked = 0, //!< waiting on unpublished inputs
        Ready,       //!< released into the pending queue
        Running,     //!< placed on a node
        Done,        //!< departed; output published
    };

    /** One task of one live instance. */
    struct LiveTask
    {
        TaskState state = TaskState::Blocked;
        std::uint16_t remainingInputs = 0;
        std::uint16_t duration = 1;
        ArtifactRef output;
        std::vector<ArtifactRef> inputs; //!< capacity reused
    };

    /** One live-instance pool slot. */
    struct LiveWorkflow
    {
        bool active = false;
        std::uint16_t templateIdx = 0;
        std::uint64_t id = 0;
        std::uint64_t seed = 0;
        std::int32_t account = 0;
        std::uint64_t submitQuantum = 0;
        std::uint16_t tasksDone = 0;
        std::vector<LiveTask> tasks; //!< capacity reused across reuse
    };

    const LiveTask &taskAt(std::size_t wf, std::size_t task) const;
    LiveTask &taskAt(std::size_t wf, std::size_t task);

    std::vector<WorkflowSpec> templates_;
    /** Per template, per task: consumer task indices (release scan). */
    std::vector<std::vector<std::vector<std::uint16_t>>> successors_;
    /** Per template: a topological task order (artifact id pass). */
    std::vector<std::vector<std::uint16_t>> topo_;
    std::size_t maxTasks_ = 0;
    std::vector<LiveWorkflow> pool_;
    std::size_t live_ = 0;
    std::uint64_t admitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t tasksCompleted_ = 0;
};

} // namespace dag
} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_DAG_WORKFLOW_HH
