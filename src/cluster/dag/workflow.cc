#include "cluster/dag/workflow.hh"

#include <algorithm>

#include "cluster/memo.hh"
#include "common/logging.hh"

namespace cuttlesys {
namespace cluster {
namespace dag {

namespace {

/** Salt tags keeping a workflow instance's draw families apart. */
constexpr std::uint64_t kDurationSalt = 0x51;

} // namespace

bool
validateWorkflowSpec(const WorkflowSpec &spec, std::string *why)
{
    const auto fail = [why](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    if (spec.tasks.empty())
        return fail("workflow '" + spec.name + "' has no tasks");
    const std::size_t n = spec.tasks.size();
    if (n > 0xffff)
        return fail("workflow '" + spec.name + "' has too many tasks");

    // Edge sanity: in range, no self-loops, no duplicate inputs.
    for (std::size_t t = 0; t < n; ++t) {
        const TaskSpec &task = spec.tasks[t];
        if (task.baseDurationQuanta == 0)
            return fail("task '" + task.name +
                        "' has a zero base duration");
        for (std::size_t a = 0; a < task.inputs.size(); ++a) {
            const std::uint16_t in = task.inputs[a];
            if (in >= n)
                return fail("task '" + task.name +
                            "' consumes an out-of-range producer");
            if (in == t)
                return fail("task '" + task.name +
                            "' consumes its own output (self-loop)");
            for (std::size_t b = 0; b < a; ++b) {
                if (task.inputs[b] == in)
                    return fail("task '" + task.name +
                                "' lists a duplicate input");
            }
        }
    }

    // Kahn's algorithm: a spec whose edges admit no topological order
    // carries a cycle and could deadlock its own frontier forever.
    std::vector<std::size_t> indegree(n, 0);
    for (const TaskSpec &task : spec.tasks)
        indegree[&task - spec.tasks.data()] = task.inputs.size();
    std::vector<std::uint16_t> queue;
    queue.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
        if (indegree[t] == 0)
            queue.push_back(static_cast<std::uint16_t>(t));
    }
    std::size_t visited = 0;
    while (visited < queue.size()) {
        const std::uint16_t t = queue[visited++];
        for (std::size_t s = 0; s < n; ++s) {
            for (const std::uint16_t in : spec.tasks[s].inputs) {
                if (in == t && --indegree[s] == 0)
                    queue.push_back(static_cast<std::uint16_t>(s));
            }
        }
    }
    if (visited != n)
        return fail("workflow '" + spec.name +
                    "' contains a dependency cycle");
    return true;
}

std::vector<WorkflowSpec>
standardWorkflowTemplates()
{
    constexpr double kMB = 1024.0 * 1024.0;
    std::vector<WorkflowSpec> out;

    // The degenerate DAG: one task, no edges — a legacy churned job
    // wearing a workflow id.
    WorkflowSpec single;
    single.name = "single";
    single.tasks.push_back(
        {"work", {}, 16.0 * kMB, 4, 4});
    out.push_back(std::move(single));

    WorkflowSpec chain;
    chain.name = "chain3";
    chain.tasks.push_back({"extract", {}, 48.0 * kMB, 3, 3});
    chain.tasks.push_back({"transform", {0}, 24.0 * kMB, 3, 3});
    chain.tasks.push_back({"load", {1}, 8.0 * kMB, 2, 2});
    out.push_back(std::move(chain));

    WorkflowSpec diamond;
    diamond.name = "diamond4";
    diamond.tasks.push_back({"source", {}, 64.0 * kMB, 3, 3});
    diamond.tasks.push_back({"left", {0}, 24.0 * kMB, 4, 4});
    diamond.tasks.push_back({"right", {0}, 24.0 * kMB, 4, 4});
    diamond.tasks.push_back({"join", {1, 2}, 8.0 * kMB, 2, 2});
    out.push_back(std::move(diamond));

    WorkflowSpec mapred;
    mapred.name = "mapred6";
    mapred.tasks.push_back({"source", {}, 96.0 * kMB, 3, 3});
    mapred.tasks.push_back({"map0", {0}, 16.0 * kMB, 3, 4});
    mapred.tasks.push_back({"map1", {0}, 16.0 * kMB, 3, 4});
    mapred.tasks.push_back({"map2", {0}, 16.0 * kMB, 3, 4});
    mapred.tasks.push_back({"map3", {0}, 16.0 * kMB, 3, 4});
    mapred.tasks.push_back(
        {"reduce", {1, 2, 3, 4}, 8.0 * kMB, 2, 2});
    out.push_back(std::move(mapred));

    return out;
}

ArtifactId
artifactIdRoot(const std::string &template_name,
               const std::string &task_name,
               std::uint64_t instance_seed)
{
    std::uint64_t h = memoHashString(template_name);
    h = memoHashCombine(h, memoHashString(task_name));
    h = memoHashCombine(h, instance_seed);
    // | 1 keeps every id distinct from the 0 = invalid sentinel.
    return h | 1;
}

ArtifactId
artifactIdDerived(const std::string &task_name,
                  const std::vector<ArtifactRef> &inputs)
{
    std::uint64_t h = memoHashString(task_name);
    for (const ArtifactRef &in : inputs)
        h = memoHashCombine(h, in.id);
    return h | 1;
}

WorkflowEngine::WorkflowEngine(std::vector<WorkflowSpec> templates,
                               std::size_t max_live)
    : templates_(std::move(templates))
{
    CS_ASSERT(!templates_.empty(), "workflow engine needs templates");
    CS_ASSERT(max_live > 0, "workflow engine needs a live pool");

    successors_.resize(templates_.size());
    topo_.resize(templates_.size());
    for (std::size_t tpl = 0; tpl < templates_.size(); ++tpl) {
        const WorkflowSpec &spec = templates_[tpl];
        std::string why;
        CS_ASSERT(validateWorkflowSpec(spec, &why),
                  "invalid workflow template: ", why);
        const std::size_t n = spec.tasks.size();
        maxTasks_ = std::max(maxTasks_, n);

        successors_[tpl].resize(n);
        for (std::size_t t = 0; t < n; ++t) {
            for (const std::uint16_t in : spec.tasks[t].inputs) {
                successors_[tpl][in].push_back(
                    static_cast<std::uint16_t>(t));
            }
        }

        // Kahn order, re-derived here (validate() proved it exists):
        // the admit() artifact-id pass walks producers before
        // consumers.
        std::vector<std::size_t> indegree(n);
        for (std::size_t t = 0; t < n; ++t)
            indegree[t] = spec.tasks[t].inputs.size();
        std::vector<std::uint16_t> &order = topo_[tpl];
        order.reserve(n);
        for (std::size_t t = 0; t < n; ++t) {
            if (indegree[t] == 0)
                order.push_back(static_cast<std::uint16_t>(t));
        }
        for (std::size_t v = 0; v < order.size(); ++v) {
            for (const std::uint16_t s : successors_[tpl][order[v]]) {
                if (--indegree[s] == 0)
                    order.push_back(s);
            }
        }
        CS_ASSERT(order.size() == n, "topological order incomplete");
    }

    // The live pool and every per-task vector reach their high-water
    // capacity here: admit() only ever re-fills reserved storage.
    pool_.resize(max_live);
    for (LiveWorkflow &wf : pool_) {
        wf.tasks.resize(maxTasks_);
        for (LiveTask &task : wf.tasks)
            task.inputs.reserve(maxTasks_);
    }
}

const WorkflowEngine::LiveTask &
WorkflowEngine::taskAt(std::size_t wf, std::size_t task) const
{
    CS_ASSERT(wf < pool_.size() && pool_[wf].active,
              "bad live-workflow slot");
    CS_ASSERT(task < templates_[pool_[wf].templateIdx].tasks.size(),
              "bad task index");
    return pool_[wf].tasks[task];
}

WorkflowEngine::LiveTask &
WorkflowEngine::taskAt(std::size_t wf, std::size_t task)
{
    return const_cast<LiveTask &>(
        static_cast<const WorkflowEngine *>(this)->taskAt(wf, task));
}

std::size_t
WorkflowEngine::admit(std::size_t tpl, std::uint64_t seed,
                      std::int32_t account, std::uint64_t quantum,
                      std::uint64_t workflow_id,
                      std::vector<ReadyTask> &ready_out)
{
    CS_ASSERT(tpl < templates_.size(), "bad template index");
    // Lowest free slot: the scan order is part of the deterministic
    // admission contract (the pool is small and serial-merge only).
    std::size_t slot = kNoWorkflow;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
        if (!pool_[i].active) {
            slot = i;
            break;
        }
    }
    if (slot == kNoWorkflow)
        return kNoWorkflow;

    const WorkflowSpec &spec = templates_[tpl];
    LiveWorkflow &wf = pool_[slot];
    wf.active = true;
    wf.templateIdx = static_cast<std::uint16_t>(tpl);
    wf.id = workflow_id;
    wf.seed = seed;
    wf.account = account;
    wf.submitQuantum = quantum;
    wf.tasksDone = 0;

    // Artifact-id pass in topological order: producers first, so a
    // derived task's inputs are already named when it hashes them.
    for (const std::uint16_t t : topo_[tpl]) {
        const TaskSpec &ts = spec.tasks[t];
        LiveTask &task = wf.tasks[t];
        task.state = TaskState::Blocked;
        task.remainingInputs =
            static_cast<std::uint16_t>(ts.inputs.size());
        const std::uint64_t jitter = ts.durationJitterQuanta;
        task.duration = static_cast<std::uint16_t>(
            ts.baseDurationQuanta +
            (jitter ? memoHashCombine(
                          memoHashCombine(seed, kDurationSalt), t) %
                      (jitter + 1)
                    : 0));
        task.inputs.clear();
        for (const std::uint16_t in : ts.inputs) {
            task.inputs.push_back(ArtifactRef{
                wf.tasks[in].output.id,
                spec.tasks[in].outputBytes});
        }
        task.output.bytes = ts.outputBytes;
        task.output.id = ts.inputs.empty()
            ? artifactIdRoot(spec.name, ts.name, seed)
            : artifactIdDerived(ts.name, task.inputs);
        if (task.remainingInputs == 0) {
            task.state = TaskState::Ready;
            ready_out.push_back(ReadyTask{
                static_cast<std::uint32_t>(slot), t});
        }
    }
    ++live_;
    ++admitted_;
    return slot;
}

std::uint64_t
WorkflowEngine::taskDrawHash(std::size_t wf, std::size_t task,
                             std::uint64_t salt) const
{
    const LiveWorkflow &w = pool_[wf];
    CS_ASSERT(w.active, "draw from an inactive workflow");
    return memoHashCombine(memoHashCombine(w.seed, salt), task);
}

std::uint16_t
WorkflowEngine::durationQuanta(std::size_t wf, std::size_t task) const
{
    return taskAt(wf, task).duration;
}

const std::vector<ArtifactRef> &
WorkflowEngine::taskInputs(std::size_t wf, std::size_t task) const
{
    return taskAt(wf, task).inputs;
}

ArtifactRef
WorkflowEngine::taskOutput(std::size_t wf, std::size_t task) const
{
    return taskAt(wf, task).output;
}

std::int32_t
WorkflowEngine::account(std::size_t wf) const
{
    CS_ASSERT(wf < pool_.size() && pool_[wf].active,
              "bad live-workflow slot");
    return pool_[wf].account;
}

std::uint64_t
WorkflowEngine::workflowId(std::size_t wf) const
{
    CS_ASSERT(wf < pool_.size() && pool_[wf].active,
              "bad live-workflow slot");
    return pool_[wf].id;
}

const std::string &
WorkflowEngine::taskName(std::size_t wf, std::size_t task) const
{
    CS_ASSERT(wf < pool_.size() && pool_[wf].active,
              "bad live-workflow slot");
    return templates_[pool_[wf].templateIdx].tasks[task].name;
}

void
WorkflowEngine::onTaskPlaced(std::size_t wf, std::size_t task)
{
    LiveTask &t = taskAt(wf, task);
    CS_ASSERT(t.state == TaskState::Ready,
              "placed a task that was not released");
    t.state = TaskState::Running;
}

void
WorkflowEngine::onTaskPreempted(std::size_t wf, std::size_t task)
{
    LiveTask &t = taskAt(wf, task);
    CS_ASSERT(t.state == TaskState::Running,
              "preempted a task that was not running");
    t.state = TaskState::Ready;
}

bool
WorkflowEngine::onTaskCompleted(std::size_t wf, std::size_t task,
                                std::uint64_t quantum,
                                std::vector<ReadyTask> &ready_out,
                                Completion &done_out)
{
    LiveWorkflow &w = pool_[wf];
    LiveTask &t = taskAt(wf, task);
    CS_ASSERT(t.state == TaskState::Running,
              "completed a task that was not running");
    t.state = TaskState::Done;
    ++w.tasksDone;
    ++tasksCompleted_;

    // Release successors whose last input just published, in task
    // order — together with the controller's (node, slot) completion
    // order this makes every release sequence deterministic.
    for (const std::uint16_t s : successors_[w.templateIdx][task]) {
        LiveTask &succ = w.tasks[s];
        CS_ASSERT(succ.remainingInputs > 0,
                  "successor released twice");
        if (--succ.remainingInputs == 0) {
            succ.state = TaskState::Ready;
            ready_out.push_back(ReadyTask{
                static_cast<std::uint32_t>(wf), s});
        }
    }

    const std::size_t n = templates_[w.templateIdx].tasks.size();
    if (w.tasksDone < n)
        return false;
    done_out.workflowId = w.id;
    done_out.account = w.account;
    done_out.makespanQuanta = quantum - w.submitQuantum;
    w.active = false;
    --live_;
    ++completed_;
    return true;
}

} // namespace dag
} // namespace cluster
} // namespace cuttlesys
