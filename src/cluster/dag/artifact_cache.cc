#include "cluster/dag/artifact_cache.hh"

#include "common/logging.hh"

namespace cuttlesys {
namespace cluster {
namespace dag {

ArtifactCache::ArtifactCache(double capacity_bytes,
                             std::size_t max_entries)
{
    reset(capacity_bytes, max_entries);
}

void
ArtifactCache::reset(double capacity_bytes, std::size_t max_entries)
{
    CS_ASSERT(capacity_bytes >= 0.0, "negative cache capacity");
    CS_ASSERT(max_entries > 0, "artifact cache needs entries");
    capacityBytes_ = capacity_bytes;
    residentBytes_ = 0.0;
    entries_.clear();
    entries_.reserve(max_entries);
    evictions_ = 0;
    insertions_ = 0;
}

std::size_t
ArtifactCache::indexOf(ArtifactId id) const
{
    // Linear scan: the cache holds tens of entries, ids are unique,
    // and the flat array keeps find() trivially safe for the parallel
    // locality probes (no rehash, no pointer chasing).
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].id == id)
            return i;
    }
    return entries_.size();
}

const ArtifactEntry *
ArtifactCache::find(ArtifactId id) const
{
    const std::size_t i = indexOf(id);
    return i < entries_.size() ? &entries_[i] : nullptr;
}

void
ArtifactCache::evictOne()
{
    CS_ASSERT(!entries_.empty(), "evicting from an empty cache");
    // Strict total order (lastTouch asc, id asc): the victim choice
    // is independent of the array's insertion history, so it replays
    // bitwise no matter how the entries got here.
    std::size_t victim = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
        const ArtifactEntry &e = entries_[i];
        const ArtifactEntry &v = entries_[victim];
        if (e.lastTouch < v.lastTouch ||
            (e.lastTouch == v.lastTouch && e.id < v.id))
            victim = i;
    }
    residentBytes_ -= entries_[victim].bytes;
    entries_[victim] = entries_.back();
    entries_.pop_back();
    ++evictions_;
}

bool
ArtifactCache::insert(ArtifactId id, double bytes,
                      std::uint64_t quantum)
{
    CS_ASSERT(id != 0, "inserting the invalid artifact id");
    CS_ASSERT(bytes >= 0.0, "negative artifact size");
    const std::size_t i = indexOf(id);
    if (i < entries_.size()) {
        entries_[i].lastTouch = quantum;
        return true;
    }
    if (bytes > capacityBytes_)
        return false; // larger than the whole cache: never resident
    while (entries_.size() >= entries_.capacity() ||
           residentBytes_ + bytes > capacityBytes_)
        evictOne();
    entries_.push_back(ArtifactEntry{id, bytes, quantum});
    residentBytes_ += bytes;
    ++insertions_;
    return true;
}

void
ArtifactCache::touch(ArtifactId id, std::uint64_t quantum)
{
    const std::size_t i = indexOf(id);
    if (i < entries_.size())
        entries_[i].lastTouch = quantum;
}

} // namespace dag
} // namespace cluster
} // namespace cuttlesys
