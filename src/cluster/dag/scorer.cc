#include "cluster/dag/scorer.hh"

#include "common/logging.hh"

namespace cuttlesys {
namespace cluster {
namespace dag {

const char *
scoreTermKindName(ScoreTermKind kind)
{
    switch (kind) {
    case ScoreTermKind::Headroom:
        return "headroom";
    case ScoreTermKind::QosPenalty:
        return "qos-penalty";
    case ScoreTermKind::OfferedLoad:
        return "offered-load";
    case ScoreTermKind::SpreadBonus:
        return "spread-bonus";
    case ScoreTermKind::Locality:
        return "locality";
    case ScoreTermKind::TransferPenalty:
        return "transfer-penalty";
    }
    return "unknown";
}

PlacementScorer::PlacementScorer(std::string name,
                                 std::vector<ScoreTerm> terms)
    : name_(std::move(name)), terms_(std::move(terms))
{
    nodeTerms_.reserve(terms_.size());
    for (const ScoreTerm &t : terms_) {
        switch (t.kind) {
        case ScoreTermKind::Locality:
            localityW_ += t.weight;
            break;
        case ScoreTermKind::TransferPenalty:
            transferW_ += t.weight;
            break;
        default:
            nodeTerms_.push_back(t);
            break;
        }
    }
}

double
PlacementScorer::score(const NodeView &view) const
{
    // Left-to-right accumulation in pipeline order: with the standard
    // term list this is bit-for-bit the legacy backfill formula (see
    // the file header's IEEE argument).
    double s = 0.0;
    for (const ScoreTerm &t : nodeTerms_) {
        double v = 0.0;
        switch (t.kind) {
        case ScoreTermKind::Headroom:
            v = view.headroomW;
            break;
        case ScoreTermKind::QosPenalty:
            v = view.qosViolated ? 1.0 : 0.0;
            break;
        case ScoreTermKind::OfferedLoad:
            v = view.loadFraction;
            break;
        case ScoreTermKind::SpreadBonus:
            v = static_cast<double>(view.freeSlots);
            break;
        case ScoreTermKind::Locality:
        case ScoreTermKind::TransferPenalty:
            CS_ASSERT(false, "job term in the node-term list");
            break;
        }
        s += t.weight * v;
    }
    return s;
}

PlacementScorer
PlacementScorer::backfill(double qos_penalty_w, double load_penalty_w,
                          double spread_bonus_w,
                          double locality_bonus_w,
                          double transfer_penalty_w)
{
    std::vector<ScoreTerm> terms = {
        {ScoreTermKind::Headroom, 1.0},
        {ScoreTermKind::QosPenalty, -qos_penalty_w},
        {ScoreTermKind::OfferedLoad, -load_penalty_w},
        {ScoreTermKind::SpreadBonus, spread_bonus_w},
    };
    if (locality_bonus_w != 0.0 || transfer_penalty_w != 0.0) {
        terms.push_back({ScoreTermKind::Locality, locality_bonus_w});
        terms.push_back(
            {ScoreTermKind::TransferPenalty, transfer_penalty_w});
    }
    return PlacementScorer("backfill", std::move(terms));
}

} // namespace dag
} // namespace cluster
} // namespace cuttlesys
