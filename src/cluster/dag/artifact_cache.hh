/**
 * @file
 * Per-node content-addressed artifact cache.
 *
 * Every fleet node keeps a bounded record of which workflow artifacts
 * are resident on it: a task's output is inserted when the task
 * completes on the node, and a placed consumer's missing inputs are
 * inserted when their modeled transfer lands. Keys are the content
 * hashes of dag/workflow.hh, so two identical computations share one
 * entry, and the placement scorer's locality term only has to ask
 * find() per (input, node) pair.
 *
 * Determinism contract (the memo-cache discipline, DESIGN.md §12):
 * find() is read-only and safe from the controller's parallel scans;
 * insert()/touch() run only in single-threaded merge phases in
 * node-index order. Eviction is LRU by *quantum* under the strict
 * total order (lastTouch asc, id asc) — never by wall clock, never by
 * insertion order — so the evicted set replays bitwise at any
 * CS_POOL_THREADS. Storage is a fixed-capacity flat array sized at
 * construction; nothing here allocates, reads a clock, or draws
 * randomness after that (cslint's fastpath-purity rule gates this
 * file).
 */

#ifndef CUTTLESYS_CLUSTER_DAG_ARTIFACT_CACHE_HH
#define CUTTLESYS_CLUSTER_DAG_ARTIFACT_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/dag/workflow.hh"

namespace cuttlesys {
namespace cluster {
namespace dag {

/** One resident artifact. */
struct ArtifactEntry
{
    ArtifactId id = 0;
    double bytes = 0.0;
    std::uint64_t lastTouch = 0; //!< quantum of the last use
};

/** Bounded per-node artifact store (see file header). */
class ArtifactCache
{
  public:
    /** Empty; reset() must run before use. */
    ArtifactCache() = default;

    ArtifactCache(double capacity_bytes, std::size_t max_entries);

    /** (Re)size and clear; the entry array is allocated here, never
     *  in find()/insert()/touch(). */
    void reset(double capacity_bytes, std::size_t max_entries);

    double capacityBytes() const { return capacityBytes_; }
    std::size_t maxEntries() const { return entries_.capacity(); }
    std::size_t size() const { return entries_.size(); }
    double residentBytes() const { return residentBytes_; }

    /** The resident entry named @p id, or nullptr. Read-only: safe
     *  from parallel scans under the phase discipline. */
    const ArtifactEntry *find(ArtifactId id) const;

    /**
     * Make @p id resident with @p bytes, stamping @p quantum as its
     * last touch, evicting least-recently-touched entries (lastTouch
     * asc, id asc) until it fits. Re-inserting a resident id just
     * touches it. Returns false — caching nothing, evicting nothing —
     * when @p bytes alone exceeds the capacity. Serial-merge only.
     */
    bool insert(ArtifactId id, double bytes, std::uint64_t quantum);

    /** Refresh @p id's last-touch quantum (no-op when absent).
     *  Serial-merge only. */
    void touch(ArtifactId id, std::uint64_t quantum);

    /** Lifetime eviction count. */
    std::uint64_t evictions() const { return evictions_; }
    /** Lifetime insertions of a non-resident id. */
    std::uint64_t insertions() const { return insertions_; }

  private:
    /** Index of @p id in entries_, or entries_.size(). */
    std::size_t indexOf(ArtifactId id) const;

    /** Evict the strict (lastTouch asc, id asc) minimum. */
    void evictOne();

    double capacityBytes_ = 0.0;
    double residentBytes_ = 0.0;
    std::vector<ArtifactEntry> entries_;
    std::uint64_t evictions_ = 0;
    std::uint64_t insertions_ = 0;
};

} // namespace dag
} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_DAG_ARTIFACT_CACHE_HH
