/**
 * @file
 * The composable placement-scoring pipeline.
 *
 * BackfillBinPack's monolithic formula is refactored here into a
 * pipeline of weighted terms evaluated left-to-right:
 *
 *   score(view) = sum_k weight_k * value_k(view)
 *
 * Node terms read the NodeView (headroom, QoS penalty, offered load,
 * spread bonus); job terms (locality, transfer penalty) read the
 * job's input-residency fraction and enter the score as a per-node
 * *delta* the fleet hands PlacementRound::placeBest — they cannot
 * live in score() because PlacementRound caches one job-agnostic
 * score per node per quantum. The remaining factor the issue's
 * pipeline names — fair-share priority — composes as the *ordering*
 * term: it decides which job commits next (fleet.cc's priority sort),
 * not which node wins, so it never appears in a node score.
 *
 * Bitwise compatibility contract: with the standard four node terms
 * in their canonical order (headroom, qos-penalty, offered-load,
 * spread-bonus) the left-to-right accumulation reproduces the legacy
 * BackfillBinPack formula exactly. Subtraction is addition of the
 * negated operand in IEEE arithmetic, (-w) * x == -(w * x) is a sign
 * flip, and a skipped conditional penalty differs from adding
 * (-w) * 0.0 only in the sign of a zero the running sum cannot carry
 * — so every double matches bit for bit, a property the placement
 * tests assert to 1024 nodes.
 *
 * Nothing here reads a clock or an RNG (cslint's fastpath-purity rule
 * gates this file): scores are pure functions of the view, which is
 * what lets the round scan nodes in parallel at any pool width.
 */

#ifndef CUTTLESYS_CLUSTER_DAG_SCORER_HH
#define CUTTLESYS_CLUSTER_DAG_SCORER_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/node.hh"

namespace cuttlesys {
namespace cluster {
namespace dag {

/** What one pipeline term measures. */
enum class ScoreTermKind : std::uint8_t
{
    // Node terms: value_k is a pure function of the NodeView.
    Headroom = 0,  //!< budgetW - measuredPowerW, watts
    QosPenalty,    //!< 1 when the node violated QoS last quantum
    OfferedLoad,   //!< the node's offered LC load fraction
    SpreadBonus,   //!< vacant batch slots
    // Job terms: value_k is a function of the placing job's
    // input-residency fraction on the node (localityDelta()).
    Locality,        //!< resident input-byte fraction, [0, 1]
    TransferPenalty, //!< non-resident input-byte fraction, [0, 1]
};

inline constexpr std::size_t kNumScoreTermKinds = 6;

/** Printable name of a term kind ("headroom", "locality", ...). */
const char *scoreTermKindName(ScoreTermKind kind);

/** One weighted term of the pipeline. */
struct ScoreTerm
{
    ScoreTermKind kind = ScoreTermKind::Headroom;
    /** Watts of headroom at the term's reference point; negative
     *  weights are penalties. */
    double weight = 0.0;
};

/**
 * An ordered list of weighted terms (see file header).
 *
 * score() folds the node terms; localityDelta() folds the job terms.
 * Construction splits the two families once so the per-node hot path
 * never branches on kind.
 */
class PlacementScorer
{
  public:
    PlacementScorer() = default;

    PlacementScorer(std::string name, std::vector<ScoreTerm> terms);

    const std::string &name() const { return name_; }
    const std::vector<ScoreTerm> &terms() const { return terms_; }

    /** Left-to-right weighted sum of the node terms over @p view. */
    double score(const NodeView &view) const;

    /** True when the pipeline carries any job (locality) term. */
    bool hasLocalityTerms() const
    {
        return localityW_ != 0.0 || transferW_ != 0.0;
    }

    /**
     * The job-side score delta for a node holding @p resident_frac of
     * the placing job's input bytes: the Locality term credits the
     * resident fraction, the TransferPenalty term charges the
     * missing fraction. Constant (0 at weight 0) for input-free jobs.
     */
    double localityDelta(double resident_frac) const
    {
        return localityW_ * resident_frac -
            transferW_ * (1.0 - resident_frac);
    }

    /**
     * The standard backfill pipeline: headroom at weight 1, the three
     * legacy knobs, and — when nonzero — the locality pair. The node
     * terms reproduce the legacy BackfillBinPack formula bitwise.
     */
    static PlacementScorer backfill(double qos_penalty_w,
                                    double load_penalty_w,
                                    double spread_bonus_w,
                                    double locality_bonus_w = 0.0,
                                    double transfer_penalty_w = 0.0);

  private:
    std::string name_ = "empty";
    std::vector<ScoreTerm> terms_;
    /** Node terms in pipeline order (job terms filtered out). */
    std::vector<ScoreTerm> nodeTerms_;
    double localityW_ = 0.0;
    double transferW_ = 0.0;
};

} // namespace dag
} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_DAG_SCORER_HH
