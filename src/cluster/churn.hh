/**
 * @file
 * Stochastic batch-job churn for the fleet simulator.
 *
 * Real clusters are not static colocations: batch jobs finish and new
 * ones are submitted continuously. The churn engine models both with
 * a single dedicated Rng so the event stream is a pure function of
 * the fleet seed:
 *
 *  - departures: each occupied batch slot leaves with a fixed
 *    per-quantum probability (geometric job lifetimes);
 *  - arrivals: a cluster-wide stream with a configurable mean rate
 *    per quantum, drawing job profiles uniformly from a pool, each
 *    arrival getting a distinct residual seed so two instances of the
 *    same benchmark never behave byte-identically.
 *
 * The controller drains the engine single-threaded, in node-index
 * order, before the parallel node step — so churn is deterministic
 * at any thread-pool width, and never perturbs any node's own
 * measurement-noise RNG stream.
 */

#ifndef CUTTLESYS_CLUSTER_CHURN_HH
#define CUTTLESYS_CLUSTER_CHURN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "apps/app_profile.hh"
#include "common/rng.hh"

namespace cuttlesys {
namespace cluster {

/** Churn-process tuning. */
struct ChurnOptions
{
    /** Per occupied slot, per quantum: probability the job finishes. */
    double departureProbability = 0.05;
    /** Mean cluster-wide arrivals per quantum. Sampled as the integer
     *  part plus one Bernoulli trial on the fraction, so the draw
     *  count per quantum is fixed. */
    double meanArrivalsPerQuantum = 1.0;
    /** Arrival-queue capacity; beyond it submissions are dropped
     *  (and counted by the controller). */
    std::size_t maxPendingJobs = 64;
};

/** The seeded churn event source. */
class JobChurnEngine
{
  public:
    /**
     * @param pool profiles arrivals are drawn from (typically the
     *             held-out test split)
     * @param seed churn stream seed (independent of node seeds)
     */
    JobChurnEngine(std::vector<AppProfile> pool, std::uint64_t seed,
                   ChurnOptions opts = {});

    const ChurnOptions &options() const { return opts_; }

    /** One departure trial for one occupied slot. */
    bool drawDeparture() { return rng_.bernoulli(departureP_); }

    /** Number of cluster-wide arrivals this quantum. */
    std::size_t drawArrivals();

    /**
     * The next arriving job: a pool profile with a fresh residual
     * seed (monotone arrival counter folded into the hash seed).
     */
    AppProfile drawJob();

    /** Jobs drawn so far (the arrival counter). */
    std::uint64_t jobsDrawn() const { return jobCounter_; }

  private:
    std::vector<AppProfile> pool_;
    Rng rng_;
    ChurnOptions opts_;
    double departureP_;
    std::size_t wholeArrivals_;
    double fracArrivals_;
    std::uint64_t jobCounter_ = 0;
};

} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_CHURN_HH
