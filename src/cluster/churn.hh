/**
 * @file
 * Stochastic batch-job churn for the fleet simulator.
 *
 * Real clusters are not static colocations: batch jobs finish and new
 * ones are submitted continuously. The churn engine models both, and
 * — unlike a sequential RNG stream — every draw is *counter-based*: a
 * SplitMix64-style hash of (engine seed, stream tag, quantum, node,
 * slot). Draws are therefore a pure function of their coordinates,
 * which buys the controller two properties at once:
 *
 *  - seed isolation per node: node i's draws never depend on how many
 *    draws node j consumed, so reconfiguring the fleet (node count,
 *    occupancy history) perturbs no other node's event stream;
 *  - order independence: the controller can evaluate draws from any
 *    worker thread in any order and still produce the same events,
 *    which is what lets the churn scan run block-parallel while the
 *    cluster trace stays bitwise deterministic at any pool width.
 *
 * Departures are one Bernoulli per occupied slot per quantum
 * (geometric job lifetimes). Arrivals are a cluster-wide mean rate
 * split evenly across per-node substreams, each Bernoulli-rounded so
 * the cluster mean is exact; arriving jobs draw their profile from a
 * pool with a per-arrival residual seed so two instances of the same
 * benchmark never behave byte-identically.
 */

#ifndef CUTTLESYS_CLUSTER_CHURN_HH
#define CUTTLESYS_CLUSTER_CHURN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "apps/app_profile.hh"

namespace cuttlesys {
namespace cluster {

/** Churn-process tuning. */
struct ChurnOptions
{
    /** Per occupied slot, per quantum: probability the job finishes. */
    double departureProbability = 0.05;
    /** Mean cluster-wide arrivals per quantum, split evenly across
     *  the per-node substreams. Each node draws the integer part of
     *  its share plus one Bernoulli trial on the fraction, so the
     *  cluster-wide mean is exact and every node consumes a fixed
     *  draw per quantum. */
    double meanArrivalsPerQuantum = 1.0;
    /** Arrival-queue capacity. At capacity the controller drops the
     *  lowest-priority entry — the incumbent or the new arrival,
     *  whichever ranks worse — counting the two drop kinds apart. */
    std::size_t maxPendingJobs = 64;
    /** Per-account arrival weights (account = index): each arrival
     *  draws its account from this distribution on its own pure
     *  counter-hash substream. Empty = every arrival is account 0. */
    std::vector<double> tenantArrivalWeights;

    /**
     * Mean cluster-wide *workflow* (DAG) arrivals per quantum, split
     * and Bernoulli-rounded exactly like meanArrivalsPerQuantum but
     * on its own stream family — so enabling DAG churn consumes no
     * draw any legacy stream ever sees, and a rate of 0 (the default)
     * reproduces the pre-DAG fleet bitwise.
     */
    double meanWorkflowArrivalsPerQuantum = 0.0;
};

/** The seeded, counter-based churn event source. */
class JobChurnEngine
{
  public:
    /**
     * @param pool profiles arrivals are drawn from (typically the
     *             held-out test split)
     * @param num_nodes fleet size the cluster arrival rate is split
     *                  across
     * @param seed churn stream seed (independent of node seeds)
     */
    JobChurnEngine(std::vector<AppProfile> pool, std::size_t num_nodes,
                   std::uint64_t seed, ChurnOptions opts = {});

    const ChurnOptions &options() const { return opts_; }
    std::size_t numNodes() const { return numNodes_; }

    /**
     * Does the occupied @p slot of @p node depart at @p quantum?
     * Pure in its coordinates: callable from any thread, any order.
     */
    bool departs(std::uint64_t quantum, std::size_t node,
                 std::size_t slot) const;

    /**
     * Arrivals submitted through @p node's share of the cluster
     * stream at @p quantum. Pure in its coordinates.
     */
    std::size_t arrivalsAt(std::uint64_t quantum,
                           std::size_t node) const;

    /**
     * The k-th job arriving at (@p quantum, @p node): a pool profile
     * whose seed is folded with the arrival's own hash, so distinct
     * arrivals — same benchmark or not — get distinct residual
     * streams. Pure in its coordinates.
     */
    AppProfile drawJobAt(std::uint64_t quantum, std::size_t node,
                         std::size_t k) const;

    /**
     * Account identity of the k-th job arriving at (@p quantum,
     * @p node): a weighted pick over tenantArrivalWeights on its own
     * stream, so adding accounts never perturbs the departure /
     * arrival / profile draws. Pure in its coordinates; always 0 when
     * no weights are configured. The controller also stamps the
     * initial resident mix through this draw with
     * @ref kResidentQuantum as the quantum coordinate (outside any
     * real quantum range, so residents never collide with arrivals).
     */
    std::size_t accountAt(std::uint64_t quantum, std::size_t node,
                          std::size_t k) const;

    /** Quantum coordinate reserved for construction-time residents. */
    static constexpr std::uint64_t kResidentQuantum =
        ~static_cast<std::uint64_t>(0);

    // --- DAG workflow arrivals (streams 6..9; replay-safe: the ---
    // --- legacy stream bases are untouched and a zero rate draws ---
    // --- nothing) ------------------------------------------------

    /** Workflow arrivals submitted through @p node's share of the
     *  cluster workflow stream at @p quantum. Pure in its
     *  coordinates; 0 whenever the rate is 0. */
    std::size_t workflowArrivalsAt(std::uint64_t quantum,
                                   std::size_t node) const;

    /** Template-pick hash of the k-th workflow arriving at
     *  (@p quantum, @p node); the caller reduces it modulo its
     *  template count. Pure in its coordinates. */
    std::uint64_t workflowPickAt(std::uint64_t quantum,
                                 std::size_t node,
                                 std::size_t k) const;

    /** Instance seed of the k-th workflow arriving at (@p quantum,
     *  @p node): the pure hash every per-task draw (duration jitter,
     *  profile pick) folds from. */
    std::uint64_t workflowSeedAt(std::uint64_t quantum,
                                 std::size_t node,
                                 std::size_t k) const;

    /** Account identity of the k-th workflow arriving at (@p quantum,
     *  @p node), on its own stream so DAG tenancy never perturbs the
     *  per-job account draws. */
    std::size_t workflowAccountAt(std::uint64_t quantum,
                                  std::size_t node,
                                  std::size_t k) const;

  private:
    /** Stream tags 0 (unused) .. 9; see churn.cc. */
    static constexpr std::size_t kNumStreams = 10;

    /** Weighted account pick shared by accountAt/workflowAccountAt. */
    std::size_t accountFromUnit(double u) const;

    std::uint64_t draw(std::uint64_t stream, std::uint64_t quantum,
                       std::uint64_t node, std::uint64_t slot) const;

    std::vector<AppProfile> pool_;
    std::size_t numNodes_;
    std::uint64_t seed_;
    ChurnOptions opts_;
    std::size_t wholeArrivalsPerNode_;
    double fracArrivalsPerNode_;
    std::size_t wholeWorkflowsPerNode_ = 0;
    double fracWorkflowsPerNode_ = 0.0;
    /** Cumulative normalized tenant weights; empty = single account. */
    std::vector<double> cumTenantWeights_;
    /** Per-stream hash bases, avalanched once at construction. */
    std::uint64_t streamBase_[kNumStreams] = {};
};

} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_CHURN_HH
