/**
 * @file
 * The fleet controller: N CuttleSys nodes under one cluster brain.
 *
 * Each node is a complete single-server stack (MulticoreSim +
 * CuttleSysScheduler + ColocationRun) running the shared
 * compressed-day scenario with a per-node phase shift and amplitude
 * — replicas of one service behind a load balancer, peaking at
 * different times. Per cluster quantum the controller, in order:
 *
 *  1. churn  — a block-parallel scan draws each node's seed-isolated
 *     departures and arrival counts (counter-based JobChurnEngine)
 *     into per-worker arena staging; a single-threaded merge then
 *     queues the events and admits arrivals — each stamped with its
 *     deterministic account draw — into the pending queue in
 *     node-index order. At capacity the *lowest-priority* entry is
 *     dropped, incumbent or newcomer, whichever ranks worse;
 *  2. place  — every node is scored once, block-parallel, and the
 *     pending queue commits single-threaded in *priority order*
 *     (fair-share x age x QoS class, ties to arrival sequence — exact
 *     FIFO for a single uniform tenant) through PlacementRound's
 *     heap: no double-booking, and the choices are bitwise those of
 *     the serial per-job rescan. A high-class job finding no vacancy
 *     may preempt the worst strictly-lower-class running job: the
 *     victim's slot is vacated and re-booked through the round
 *     (refresh + placeOne), the victim re-queues with its original
 *     submit quantum and sequence number, and the eviction rides the
 *     existing churn seam so the victim's learned CF state drops;
 *  3. budget — per-node demand weights are computed block-parallel
 *     with a block-ordered reduction; the cap clip/redistribute pass
 *     runs single-threaded in index order;
 *  4. shift  — a block-parallel scan gathers each replica's upcoming
 *     offered load; donor/receiver pairing and the load-shift commit
 *     run single-threaded in index order;
 *  5. step   — steps all nodes concurrently on the global thread
 *     pool. Nodes share no mutable state, and each node's own
 *     pipeline is bitwise deterministic at any pool width;
 *  6. gather — aggregates telemetry in node-index order: per-node
 *     trace records are drained into the fleet-wide sink (stamped
 *     with their node index) and the cluster counters accumulate.
 *
 * The discipline throughout (DESIGN.md §12): parallel regions scan —
 * they read shared state and write only disjoint per-node entries or
 * per-worker arena scratch — and single-threaded fixed-order merges
 * commit. Every draw is a pure function of its coordinates and every
 * floating-point reduction combines fixed-size block partials in
 * block order, so the cluster trace is bitwise identical at any
 * CS_POOL_THREADS.
 */

#ifndef CUTTLESYS_CLUSTER_FLEET_HH
#define CUTTLESYS_CLUSTER_FLEET_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/accounting.hh"
#include "cluster/churn.hh"
#include "cluster/dag/artifact_cache.hh"
#include "cluster/dag/workflow.hh"
#include "cluster/memo.hh"
#include "cluster/node.hh"
#include "cluster/placement.hh"
#include "cluster/power_manager.hh"
#include "common/arena.hh"
#include "lcsim/scenarios.hh"
#include "telemetry/trace_sink.hh"

namespace cuttlesys {
namespace cluster {

/** Fleet-wide configuration. */
struct FleetOptions
{
    std::size_t numNodes = 8;
    std::size_t batchSlotsPerNode = 16;
    std::uint64_t seed = 2026;

    /** The shared day every node rides (phase-staggered per node). */
    CompressedDayScenario scenario;
    /** Stagger each node's diurnal phase across the day (replicas in
     *  different "time zones"); false runs them in lockstep. */
    bool staggerPhases = true;
    /** Per-node load-amplitude spread: node i's diurnal wave is
     *  scaled into [loadScaleMin, loadScaleMax] (heterogeneous
     *  replica popularity). Equal values disable the spread. */
    double loadScaleMin = 0.70;
    double loadScaleMax = 1.00;

    /**
     * Application phase-drift dynamics forwarded to every node's
     * simulator (see MulticoreSim::setPhaseDrift). The defaults are
     * the sim's unit-test defaults — a 7-timeslice phase cycle;
     * scenario-scale runs should slow the period to match their time
     * compression so jobs do not change identity every few quanta.
     */
    double phaseDriftAmplitude = kPhaseDriftAmplitude;
    double phaseDriftPeriodSec = kPhaseDriftPeriodSec;

    /** Rack budget as a fraction of numNodes * nodeMaxPowerW. */
    double rackBudgetFrac = 0.70;
    /** Per-node floor as a fraction of nodeMaxPowerW. */
    double nodeFloorFrac = 0.30;
    PowerPolicy powerPolicy = PowerPolicy::HeadroomRebalance;
    /** HeadroomRebalance QoS boost, W (see PowerManagerOptions). */
    double qosBoostW = 10.0;

    ChurnOptions churn;

    /**
     * DAG batch workflows (dag/workflow.hh): when dag.enable is set
     * and churn.meanWorkflowArrivalsPerQuantum > 0, churned arrivals
     * include small task DAGs whose placements feel data gravity
     * through the per-node artifact caches. Disabled (the default)
     * the fleet replays the legacy trace bitwise.
     */
    dag::DagOptions dag;

    /**
     * The accounts submitting into the churned arrival stream. Empty
     * (the default) runs the legacy single anonymous tenant. When
     * set, each tenant's arrivalWeight drives the account draw
     * (overriding churn.tenantArrivalWeights), its shares its
     * fair-share entitlement, and its qosClass the class of every job
     * it submits.
     */
    std::vector<TenantSpec> tenants;
    /** Ledger tuning: usage half-life, aging, class weights. */
    AccountingOptions accounting;
    /**
     * Order the pending queue by fair-share priority and allow
     * class-strict preemption. False freezes the legacy strict-FIFO
     * queue (drop-the-newcomer at capacity, no preemption) — the
     * baseline the tenant experiment compares against.
     */
    bool fairShareOrdering = true;
    /** Cap on preemption evictions per cluster quantum. */
    std::size_t maxPreemptionsPerQuantum = 8;

    /** LC load-shift between replicas: when a replica violated QoS
     *  last quantum, this fraction of its offered load moves to the
     *  least-loaded replica for the next quantum. 0 disables. */
    double qosLoadShiftFrac = 0.15;

    /**
     * The fleet-wide schedule memo cache: nodes entering a quantized
     * (job-mix, load bin, budget bin) signature another node already
     * converged a schedule for seed their search from that sibling's
     * point. Active only while scheduler.fastPath is on, so
     * fastPath=false alone reproduces the always-full fleet bitwise.
     */
    bool memoCache = true;
    /** Direct-mapped memo table size (signatures, not nodes). */
    std::size_t memoBuckets = 512;
    /** Load-fraction quantization of the memo key. */
    std::size_t memoLoadBins = 16;
    /** Budget-fraction (of node max power) quantization. */
    std::size_t memoBudgetBins = 16;
    /**
     * Give every node the *same* batch mix (true replicas) instead of
     * the per-node seeded draw — the configuration where
     * phase-staggered siblings share memo signatures and cross-node
     * seeding actually fires. Sim seeds stay per-node either way.
     */
    bool uniformMixes = false;

    /** Fleet-wide trace sink; per-node records are drained into it in
     *  node-index order, each stamped with its node. Null = untraced
     *  (and the steady-state cluster quantum stays heap-free). */
    telemetry::TraceSink *sink = nullptr;

    bool validateDecisions = true;
    bool keepSliceRecords = false;

    /** Runtime tuning shared by every node's scheduler. */
    CuttleSysOptions scheduler;
};

/** Per-node slice of the fleet outcome. */
struct NodeSummary
{
    std::size_t node = 0;
    std::size_t quanta = 0;
    std::size_t qosViolations = 0;
    double qosPct = 0.0;        //!< % quanta meeting QoS
    double meanGmeanBips = 0.0; //!< all-slots gmean (vacant floored)
    /** Mean over quanta of the occupied-slots-only gmean — per-job
     *  throughput, the metric placement actually moves. */
    double meanJobGmeanBips = 0.0;
    double meanPowerW = 0.0;
    double meanBudgetW = 0.0;
    double meanHeadroomW = 0.0;
    double totalBatchInstructions = 0.0;
    std::size_t arrivals = 0;
    std::size_t departures = 0;
    std::size_t invariantViolations = 0;
};

/** Per-account slice of the fleet outcome (sacct-style). */
struct AccountSummary
{
    std::string name;
    QosClass qosClass = QosClass::Batch;
    double shares = 1.0;
    double arrivalWeight = 1.0;
    std::size_t arrivals = 0;
    std::size_t placements = 0;
    std::size_t dropsNew = 0;    //!< this account's arrival rejected
    std::size_t dropsQueued = 0; //!< evicted from the pending queue
    std::size_t preemptionsWon = 0;
    std::size_t preemptionsSuffered = 0;
    double coreSeconds = 0.0; //!< width-weighted (totalWidth/18)
    double ginstr = 0.0;      //!< giga-instructions retired
    double gmeanBips = 0.0;   //!< gmean over charged slot-quanta
    double fairShare = 1.0;   //!< factor at the last quantum
    /** DAG workflows of this account that ran to completion, and the
     *  gmean of their submit->finish makespans (quanta; 0 if none). */
    std::size_t workflowsCompleted = 0;
    double gmeanMakespanQuanta = 0.0;
};

/** Cluster-wide outcome of one fleet run. */
struct FleetSummary
{
    std::vector<NodeSummary> nodes;
    std::size_t numNodes = 0;
    std::size_t quanta = 0;          //!< per node
    double clusterQosPct = 0.0;      //!< % node-quanta meeting QoS
    double gmeanBatchBips = 0.0;     //!< gmean over nodes' means
    /** Gmean over nodes of meanJobGmeanBips (occupied slots only). */
    double jobGmeanBips = 0.0;
    double meanClusterPowerW = 0.0;  //!< sum over nodes, mean over time
    double rackBudgetW = 0.0;
    double meanHeadroomW = 0.0;      //!< rack budget minus draw
    double totalBatchInstructions = 0.0;
    std::size_t arrivals = 0;        //!< submissions accepted
    std::size_t droppedArrivals = 0; //!< newcomers rejected at the cap
    /** Queued entries displaced at the cap by a higher-priority
     *  newcomer (0 under legacy FIFO ordering, which always rejects
     *  the newcomer — the starvation bug this field's path fixes). */
    std::size_t droppedQueued = 0;
    std::size_t departures = 0;
    std::size_t placements = 0;      //!< jobs placed onto a node
    std::size_t preemptions = 0;     //!< class-strict evictions
    std::size_t placementStalls = 0; //!< job-quanta spent waiting
    std::size_t loadShifts = 0;      //!< replica load-shift events
    // --- incremental-decision outcome (stability gate + memo cache) --
    std::size_t fastPathHits = 0;    //!< fast-reuse node-quanta
    std::size_t fullQuanta = 0;      //!< full node-quanta (memo incl.)
    std::size_t memoSeededQuanta = 0; //!< full quanta seeded from memo
    double fastPathHitRate = 0.0;    //!< hits / (hits + full)
    std::size_t memoLookups = 0;     //!< memo probes (node-quanta)
    std::size_t memoHits = 0;        //!< probes that found a sibling
    std::size_t memoStores = 0;      //!< serial-merge table commits
    // --- DAG workflow outcome (all 0 with dag disabled) --------------
    std::size_t workflowsSubmitted = 0;
    std::size_t workflowsCompleted = 0;
    std::size_t workflowsDropped = 0; //!< live pool full at arrival
    std::size_t dagTasksCompleted = 0;
    std::size_t artifactHits = 0;     //!< inputs found resident
    std::size_t artifactMisses = 0;   //!< inputs transferred in
    std::size_t artifactEvictions = 0;
    double artifactHitRate = 0.0;     //!< hits / (hits + misses)
    double transferBytes = 0.0;       //!< modeled interconnect traffic
    /** Gmean over completed workflows of submit->finish quanta — the
     *  headline the locality A/B moves. 0 when none completed. */
    double gmeanMakespanQuanta = 0.0;
    double meanMakespanQuanta = 0.0;
    std::string placementPolicy;
    std::string powerPolicy;
    /** Per-account accounting, in account order (always at least the
     *  anonymous default account). */
    std::vector<AccountSummary> accounts;
};

/** The cluster controller (see file header for the quantum loop). */
class FleetController
{
  public:
    /**
     * @param params machine parameters shared by every node
     * @param tables offline training tables shared by every node
     * @param lc_service the calibrated LC service each replica runs
     * @param batch_pool profiles for initial mixes and churn arrivals
     * @param node_max_power_w one node's reference max power
     *        (power::systemMaxPower of the pool)
     * @param placement the placement policy (borrowed)
     * @param opts fleet configuration
     */
    FleetController(const SystemParams &params,
                    const TrainingTables &tables,
                    const AppProfile &lc_service,
                    const std::vector<AppProfile> &batch_pool,
                    double node_max_power_w,
                    PlacementPolicy &placement, FleetOptions opts = {});
    ~FleetController();

    FleetController(const FleetController &) = delete;
    FleetController &operator=(const FleetController &) = delete;

    std::size_t numNodes() const { return nodes_.size(); }
    ClusterNode &node(std::size_t i) { return *nodes_[i]; }

    /** Quanta per node in the configured day. */
    std::size_t numQuanta() const { return numQuanta_; }
    std::size_t nextQuantum() const { return quantum_; }
    bool done() const { return quantum_ >= numQuanta_; }

    /** Run one cluster quantum (churn, place, budget, step, gather). */
    void stepQuantum();

    /** Drive the whole day, then summarize. */
    FleetSummary run();

    /** Aggregate the quanta run so far into a FleetSummary. */
    FleetSummary summary();

    /** Jobs currently waiting in the arrival queue. */
    std::size_t pendingJobs() const { return pending_.size(); }

    /** The per-account usage ledger (fair-share state included). */
    const AccountingLedger &ledger() const { return ledger_; }

    /** The fleet memo cache (exposed for determinism tests). */
    const ScheduleMemoCache &memoCache() const { return memo_; }

    /** The workflow engine (null with dag disabled; tests only). */
    const dag::WorkflowEngine *workflowEngine() const
    {
        return engine_.get();
    }
    /** Node @p i's artifact cache (dag-enabled fleets only). */
    const dag::ArtifactCache &artifactCache(std::size_t i) const
    {
        return caches_[i];
    }

  private:
    void applyChurn();
    void gatherViews();
    void placePending();
    void splitBudget();
    void shiftLoad();
    void memoSeedNodes();
    void memoPopulate();
    void gatherQuantum();

    /** Memo phases run only when both layers are on: the table is an
     *  accelerator for the stability gate's full quanta. */
    bool memoEnabled() const
    {
        return opts_.memoCache && opts_.scheduler.fastPath;
    }

    /** Quantized (job-mix, load bin, budget bin) memo signature of
     *  node @p i's upcoming quantum. Pure in replayable state. */
    std::uint64_t nodeMemoKey(std::size_t i) const;

    /** Admit one churned arrival into the pending queue (drop-lowest
     *  at the capacity cap). */
    void admitArrival(PendingJob &&job);
    /** Try to evict a running lower-class job for @p job; returns
     *  true when the eviction and placement both committed. */
    bool tryPreempt(const PendingJob &job, double job_priority);

    bool dagEnabled() const { return engine_ != nullptr; }
    /** Serial head of applyChurn(): depart DAG tasks whose deadline
     *  is this quantum, publish their artifacts, release successors. */
    void applyDagCompletions();
    /** Drain dagReady_ into the pending queue (reserved capacity:
     *  released tasks never contend with the churn admission cap). */
    void enqueueReadyTasks(std::uint64_t submit_quantum);

    /** One node's staged churn draws (filled by the parallel scan,
     *  consumed by the serial merge; spans live in churnArenas_). */
    struct ChurnNodePlan
    {
        std::uint16_t *departSlots = nullptr;
        std::uint16_t numDeparts = 0;
        std::uint16_t arrivals = 0;
        std::uint16_t workflowArrivals = 0;
    };

    /**
     * One running batch job's cluster-side identity (node-major flat
     * map, slotsPerNode_ entries per node; account -1 = vacant). The
     * preemption scan reads it for victim candidates, and a victim's
     * profile / submit quantum / sequence number re-queue from here.
     * Mutated only in the single-threaded merge phases.
     */
    struct RunningJob
    {
        AppProfile profile;
        std::uint64_t submitSlice = 0;
        std::uint32_t arrivalSeq = 0;
        std::int32_t account = -1;
        QosClass qosClass = QosClass::Batch;
        /** DAG identity: live workflow slot and task index, or -1 for
         *  plain churned jobs. A DAG task departs deterministically
         *  when the quantum reaches dagDeadline (duration plus the
         *  modeled transfer quanta), never through the Bernoulli
         *  departure stream. */
        std::int32_t wfSlot = -1;
        std::int16_t wfTask = -1;
        std::uint64_t dagDeadline = 0;
    };

    RunningJob &runningAt(std::size_t node, std::size_t slot)
    {
        return running_[node * slotsPerNode_ + slot];
    }

    FleetOptions opts_;
    PlacementPolicy &placement_;
    JobChurnEngine churn_;
    AccountingLedger ledger_;
    ClusterPowerManager power_;
    double nodeMaxPowerW_;
    double timesliceSec_ = 0.0;
    std::size_t slotsPerNode_ = 0;

    std::vector<std::unique_ptr<telemetry::MemorySink>> nodeSinks_;
    std::vector<std::unique_ptr<ClusterNode>> nodes_;
    std::vector<std::size_t> drained_; //!< records already forwarded

    std::size_t numQuanta_ = 0;
    std::size_t quantum_ = 0;

    // Persistent per-quantum scratch (heap-free steady state). The
    // parallel phase scans stage variable-length results in
    // per-worker arenas (churnArenas_) and fixed-length results in
    // the per-node vectors; the serial merges read them back in node
    // order.
    WorkerArenaSet churnArenas_;
    std::vector<ChurnNodePlan> churnPlan_;
    PlacementRound round_;
    std::vector<NodeView> views_;
    std::vector<double> budgets_;
    std::vector<double> loads_;     //!< next-quantum offered loads
    std::vector<double> loadExtra_; //!< load-shift receive buffer
    std::vector<PendingJob> pending_;
    std::vector<RunningJob> running_; //!< node-major running registry
    std::vector<double> prio_;        //!< per-pending priority scratch
    std::vector<std::uint32_t> order_; //!< sorted commit order scratch
    std::vector<char> placed_;         //!< per-pending placed flags
    ScheduleMemoCache memo_;           //!< fleet schedule memo table
    std::vector<std::uint64_t> memoKeys_; //!< per-node quantum keys
    std::vector<unsigned char> memoHit_;  //!< per-node probe results
    std::vector<unsigned char> memoStore_; //!< per-node store flags
    std::uint32_t nextArrivalSeq_ = 0;
    std::size_t preemptionsThisQuantum_ = 0;

    // --- DAG workflow state (all empty/null with dag disabled) -------
    std::unique_ptr<dag::WorkflowEngine> engine_;
    std::vector<dag::ArtifactCache> caches_; //!< one per node
    /** Profile pool task draws pick from (the churn pool's copy). */
    std::vector<AppProfile> dagPool_;
    /** Job-side locality weights (localityDelta source). */
    dag::PlacementScorer localityTerms_;
    std::vector<dag::WorkflowEngine::ReadyTask> dagReady_;
    dag::WorkflowEngine::Completion dagDone_;
    /** Per-(dag row, node) score deltas for placeBest, row-major;
     *  sized queueBound x nodes at construction. */
    std::vector<double> dagDeltas_;
    /** Pending index -> delta row (-1 = not a data-gravity commit). */
    std::vector<std::int32_t> dagRow_;
    /** Delta row -> pending index (the parallel fill's work list). */
    std::vector<std::uint32_t> dagRowPending_;
    std::size_t pendingDag_ = 0; //!< DAG entries in pending_
    std::uint64_t nextWorkflowId_ = 1;

    // Cluster counters.
    std::size_t arrivals_ = 0;
    std::size_t droppedArrivals_ = 0;
    std::size_t droppedQueued_ = 0;
    std::size_t departures_ = 0;
    std::size_t placements_ = 0;
    std::size_t preemptions_ = 0;
    std::size_t placementStalls_ = 0;
    std::size_t loadShifts_ = 0;
    std::size_t memoLookups_ = 0;
    std::size_t memoHits_ = 0;
    std::size_t workflowsSubmitted_ = 0;
    std::size_t workflowsDropped_ = 0;
    std::size_t artifactHits_ = 0;
    std::size_t artifactMisses_ = 0;
    double transferBytes_ = 0.0;
    double clusterPowerSum_ = 0.0;   //!< sum over node-quanta
    double clusterBudgetSum_ = 0.0;
    std::vector<double> nodeBudgetSum_;
    std::vector<double> nodePowerSum_;
    std::vector<double> nodeJobGmeanSum_;   //!< occupied-only gmeans
    std::vector<std::size_t> nodeJobGmeanCount_;
};

} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_FLEET_HH
