#include "cluster/placement.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace cuttlesys {
namespace cluster {

namespace {

/** Nodes scored per parallel block (see ThreadPool::parallelChunks). */
constexpr std::size_t kScoreChunk = 64;

} // namespace

std::size_t
PlacementPolicy::place(const PendingJob &job,
                       const std::vector<NodeView> &nodes) const
{
    (void)job;
    std::size_t best = kNoNode;
    double best_score = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeView &node = nodes[i];
        if (node.freeSlots == 0)
            continue;
        const double s = score(node);
        if (best == kNoNode || s > best_score) {
            best = node.node;
            best_score = s;
        }
    }
    return best;
}

double
FifoFirstFit::score(const NodeView &node) const
{
    (void)node;
    return 0.0;
}

double
BackfillBinPack::score(const NodeView &node) const
{
    // The one formula, on the one scale (watts of headroom) — see the
    // class comment in placement.hh — now evaluated as the canonical
    // term pipeline, whose left-to-right accumulation reproduces the
    // retired monolithic expression bit for bit (scorer.hh). An
    // unstepped node's view carries measuredPowerW = 0, so headroomW
    // is its full opening budget: no special case, and the
    // penalty/bonus knobs keep their units from the very first
    // quantum.
    return pipeline_.score(node);
}

bool
PlacementRound::entryBelow(const Entry &a, const Entry &b)
{
    // Max-heap on score; equal scores order by ascending index so the
    // pop sequence reproduces the serial scan's first-strict-argmax
    // tie-breaking exactly.
    if (a.score != b.score)
        return a.score < b.score;
    return a.idx > b.idx;
}

void
PlacementRound::begin(const PlacementPolicy &policy,
                      std::vector<NodeView> &views, ThreadPool &pool)
{
    policy_ = &policy;
    views_ = &views;
    const std::size_t n = views.size();
    scores_.resize(n);
    // Parallel scan: each block writes only its own score range, and
    // every score is a pure function of one immutable view, so the
    // result is independent of worker count and execution order.
    pool.parallelChunks(
        n, kScoreChunk,
        [this, &policy, &views](std::size_t, std::size_t begin,
                                std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                if (views[i].freeSlots > 0)
                    scores_[i] = policy.score(views[i]);
            }
        });
    // Ordered commit structure, built single-threaded: entries land
    // in index order, then a bottom-up Floyd heapify. The pop
    // sequence of a binary heap under a strict total order (score
    // ties break on the index, and indices are unique) is the same
    // for every valid heap shape, so the build order cannot leak into
    // the placement choices.
    heap_.clear();
    pos_.assign(n, kNotInHeap);
    for (std::size_t i = 0; i < n; ++i) {
        if (views[i].freeSlots > 0) {
            pos_[i] = heap_.size();
            heap_.push_back(Entry{scores_[i], i});
        }
    }
    for (std::size_t i = heap_.size() / 2; i-- > 0;)
        siftDown(i);
}

void
PlacementRound::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    Entry moved = heap_[i];
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n &&
            entryBelow(heap_[child], heap_[child + 1])) {
            ++child;
        }
        if (!entryBelow(moved, heap_[child]))
            break;
        heap_[i] = heap_[child];
        pos_[heap_[i].idx] = i;
        i = child;
    }
    heap_[i] = moved;
    pos_[moved.idx] = i;
}

void
PlacementRound::siftUp(std::size_t i)
{
    Entry moved = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!entryBelow(heap_[parent], moved))
            break;
        heap_[i] = heap_[parent];
        pos_[heap_[i].idx] = i;
        i = parent;
    }
    heap_[i] = moved;
    pos_[moved.idx] = i;
}

void
PlacementRound::removeAt(std::size_t i)
{
    pos_[heap_[i].idx] = kNotInHeap;
    const Entry moved = heap_.back();
    heap_.pop_back();
    if (i >= heap_.size())
        return;
    heap_[i] = moved;
    pos_[moved.idx] = i;
    siftDown(i);
    siftUp(pos_[moved.idx]);
}

std::size_t
PlacementRound::placeOne()
{
    CS_ASSERT(views_ != nullptr, "placeOne() before begin()");
    if (heap_.empty())
        return PlacementPolicy::kNoNode;
    const Entry top = heap_.front();
    NodeView &view = (*views_)[top.idx];
    // A popped node must have a vacancy: placeOne() removes nodes the
    // moment their last slot books, and external bookings must come
    // through refresh(). Tripping here means a caller mutated a view
    // behind the round's back.
    CS_ASSERT(view.freeSlots > 0, "placement heap booked a full node");
    --view.freeSlots;
    ++view.occupiedSlots;
    // The booking only changes this node's score, so re-scoring it in
    // place and sifting down keeps every heap entry fresh — and a
    // node at zero vacancies is removed outright, so it cannot
    // re-enter with any score, stale or fresh, until refresh()
    // reports a new vacancy.
    if (view.freeSlots > 0) {
        const double s = policy_->score(view);
        scores_[top.idx] = s; // keep the flat scan fresh (placeBest)
        heap_.front() = Entry{s, top.idx};
        siftDown(0);
    } else {
        removeAt(0);
    }
    return view.node;
}

std::size_t
PlacementRound::placeBest(const double *delta)
{
    CS_ASSERT(views_ != nullptr, "placeBest() before begin()");
    CS_ASSERT(delta != nullptr, "placeBest() without deltas");
    // Flat scan over the cached base scores plus the job's per-node
    // delta: the exact serial-oracle order (score desc, index asc by
    // first-strict-argmax), so the data-gravity path keeps the same
    // bitwise contract the heap path has. The cached scores are
    // trustworthy because every booking — placeOne, placeBest,
    // refresh — re-scores the node it touched.
    const std::vector<NodeView> &views = *views_;
    std::size_t best = PlacementPolicy::kNoNode;
    double bestScore = 0.0;
    for (std::size_t i = 0; i < views.size(); ++i) {
        if (views[i].freeSlots == 0)
            continue;
        const double s = scores_[i] + delta[i];
        if (best == PlacementPolicy::kNoNode || s > bestScore) {
            best = i;
            bestScore = s;
        }
    }
    if (best == PlacementPolicy::kNoNode)
        return PlacementPolicy::kNoNode;
    NodeView &view = (*views_)[best];
    --view.freeSlots;
    ++view.occupiedSlots;
    refresh(best); // re-score; removes the node when it filled up
    return view.node;
}

void
PlacementRound::refresh(std::size_t idx)
{
    CS_ASSERT(views_ != nullptr, "refresh() before begin()");
    CS_ASSERT(idx < views_->size(), "refresh() of a bad node index");
    const NodeView &view = (*views_)[idx];
    const std::size_t p = pos_[idx];
    if (view.freeSlots == 0) {
        if (p != kNotInHeap)
            removeAt(p);
        return;
    }
    const double s = policy_->score(view);
    scores_[idx] = s;
    if (p == kNotInHeap) {
        pos_[idx] = heap_.size();
        heap_.push_back(Entry{s, idx});
        siftUp(heap_.size() - 1);
    } else {
        heap_[p].score = s;
        siftDown(p);
        siftUp(pos_[idx]);
    }
}

} // namespace cluster
} // namespace cuttlesys
