#include "cluster/placement.hh"

namespace cuttlesys {
namespace cluster {

std::size_t
FifoFirstFit::place(const PendingJob &job,
                    const std::vector<NodeView> &nodes)
{
    (void)job;
    for (const NodeView &node : nodes) {
        if (node.freeSlots > 0)
            return node.node;
    }
    return kNoNode;
}

std::size_t
BackfillBinPack::place(const PendingJob &job,
                       const std::vector<NodeView> &nodes)
{
    (void)job;
    std::size_t best = kNoNode;
    double bestScore = 0.0;
    for (const NodeView &node : nodes) {
        if (node.freeSlots == 0)
            continue;
        // Until a node has run a quantum there is no headroom
        // measurement; load and free capacity are the only signals.
        double score = node.stepped ? node.headroomW : 0.0;
        if (node.qosViolated)
            score -= qosPenaltyW_;
        score -= loadPenaltyW_ * node.loadFraction;
        score += spreadBonusW_ * static_cast<double>(node.freeSlots);
        if (best == kNoNode || score > bestScore) {
            best = node.node;
            bestScore = score;
        }
    }
    return best;
}

} // namespace cluster
} // namespace cuttlesys
