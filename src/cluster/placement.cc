#include "cluster/placement.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace cuttlesys {
namespace cluster {

namespace {

/** Nodes scored per parallel block (see ThreadPool::parallelChunks). */
constexpr std::size_t kScoreChunk = 64;

} // namespace

std::size_t
PlacementPolicy::place(const PendingJob &job,
                       const std::vector<NodeView> &nodes) const
{
    (void)job;
    std::size_t best = kNoNode;
    double best_score = 0.0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        const NodeView &node = nodes[i];
        if (node.freeSlots == 0)
            continue;
        const double s = score(node);
        if (best == kNoNode || s > best_score) {
            best = node.node;
            best_score = s;
        }
    }
    return best;
}

double
FifoFirstFit::score(const NodeView &node) const
{
    (void)node;
    return 0.0;
}

double
BackfillBinPack::score(const NodeView &node) const
{
    // Until a node has run a quantum there is no headroom
    // measurement; load and free capacity are the only signals.
    double score = node.stepped ? node.headroomW : 0.0;
    if (node.qosViolated)
        score -= qosPenaltyW_;
    score -= loadPenaltyW_ * node.loadFraction;
    score += spreadBonusW_ * static_cast<double>(node.freeSlots);
    return score;
}

bool
PlacementRound::entryBelow(const Entry &a, const Entry &b)
{
    // Max-heap on score; equal scores order by ascending index so the
    // pop sequence reproduces the serial scan's first-strict-argmax
    // tie-breaking exactly.
    if (a.score != b.score)
        return a.score < b.score;
    return a.idx > b.idx;
}

void
PlacementRound::begin(const PlacementPolicy &policy,
                      std::vector<NodeView> &views, ThreadPool &pool)
{
    policy_ = &policy;
    views_ = &views;
    const std::size_t n = views.size();
    scores_.resize(n);
    // Parallel scan: each block writes only its own score range, and
    // every score is a pure function of one immutable view, so the
    // result is independent of worker count and execution order.
    pool.parallelChunks(
        n, kScoreChunk,
        [this, &policy, &views](std::size_t, std::size_t begin,
                                std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                if (views[i].freeSlots > 0)
                    scores_[i] = policy.score(views[i]);
            }
        });
    // Ordered commit structure, built single-threaded in index order.
    heap_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        if (views[i].freeSlots > 0)
            heap_.push_back(Entry{scores_[i], i});
    }
    std::make_heap(heap_.begin(), heap_.end(), entryBelow);
}

void
PlacementRound::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    Entry moved = heap_[i];
    for (;;) {
        std::size_t child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n &&
            entryBelow(heap_[child], heap_[child + 1])) {
            ++child;
        }
        if (!entryBelow(moved, heap_[child]))
            break;
        heap_[i] = heap_[child];
        i = child;
    }
    heap_[i] = moved;
}

std::size_t
PlacementRound::placeOne()
{
    CS_ASSERT(views_ != nullptr, "placeOne() before begin()");
    if (heap_.empty())
        return PlacementPolicy::kNoNode;
    const Entry top = heap_.front();
    NodeView &view = (*views_)[top.idx];
    CS_ASSERT(view.freeSlots > 0, "placement heap booked a full node");
    --view.freeSlots;
    ++view.occupiedSlots;
    // The booking is the only view mutation since begin(), so
    // re-scoring just this node keeps every heap entry fresh. The
    // re-scored node replaces itself at the root and sifts down in
    // one pass — half the comparisons of a pop + push round trip —
    // and because entryBelow is a strict total order (score ties
    // break on the index), every valid heap pops the same sequence,
    // so the serial-oracle equivalence is unaffected.
    if (view.freeSlots > 0) {
        heap_.front() = Entry{policy_->score(view), top.idx};
    } else {
        heap_.front() = heap_.back();
        heap_.pop_back();
    }
    if (!heap_.empty())
        siftDown(0);
    return view.node;
}

} // namespace cluster
} // namespace cuttlesys
