/**
 * @file
 * The fleet-wide schedule memo cache.
 *
 * Phase-staggered replicas ride the same diurnal wave: node 7 at 14:00
 * faces the job mix, load bin, and budget bin node 3 converged a
 * schedule for an hour ago. The memo cache is a deterministic
 * direct-mapped table keyed by a quantized signature of those
 * conditions; a hit hands the looking-up node the sibling's converged
 * batch point as an extra search seed (CuttleSysScheduler::
 * setMemoSeed), so its DDS refines a known-good schedule instead of
 * rediscovering it.
 *
 * Determinism contract (DESIGN.md §12/§13): lookups happen in the
 * controller's parallel scans but only *read* table state committed by
 * earlier serial merges; stores happen single-threaded in strict
 * node-index order after the step phase. The table never allocates
 * after construction, and nothing in this file reads a clock or an
 * RNG (cslint's fastpath-purity rule), so cluster traces stay bitwise
 * identical at any CS_POOL_THREADS.
 */

#ifndef CUTTLESYS_CLUSTER_MEMO_HH
#define CUTTLESYS_CLUSTER_MEMO_HH

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace cuttlesys {
namespace cluster {

/** One splitmix64 mixing step folding @p v into @p h. */
std::uint64_t memoHashCombine(std::uint64_t h, std::uint64_t v);

/** FNV-1a over @p s (job-mix signatures hash profile *names*, never
 *  pointers: addresses change run to run, names replay). */
std::uint64_t memoHashString(std::string_view s);

/** Quantize @p value01 (clamped to [0, 1]) into one of @p bins. */
std::size_t memoBin(double value01, std::size_t bins);

/**
 * Direct-mapped (job-mix, load bin, budget bin) -> converged batch
 * point table. Collisions evict (last store in node order wins); a
 * lookup whose bucket holds a different full key is a miss, so a
 * seed is only ever the exact quantized signature's point.
 */
class ScheduleMemoCache
{
  public:
    /** Empty; reset() must run before use. */
    ScheduleMemoCache() = default;

    /** @p width = batch slots per node (point dimensionality). */
    ScheduleMemoCache(std::size_t buckets, std::size_t width);

    /** (Re)size and clear; all storage is allocated here, never in
     *  find()/store(). */
    void reset(std::size_t buckets, std::size_t width);

    std::size_t buckets() const { return buckets_; }
    std::size_t width() const { return width_; }

    /**
     * The point stored under @p key (width() entries), or nullptr.
     * Read-only and safe to call from parallel scans as long as no
     * store() runs concurrently (the controller's phase discipline).
     */
    const std::uint16_t *find(std::uint64_t key) const;

    /** Store @p point (width() entries) under @p key, evicting the
     *  bucket's previous tenant. Serial-merge only. */
    void store(std::uint64_t key, const std::uint16_t *point);

    /** Total store() calls (bucket evictions included). */
    std::uint64_t stores() const { return stores_; }

    /** Buckets currently holding a valid entry. */
    std::size_t occupied() const;

  private:
    std::size_t buckets_ = 0;
    std::size_t width_ = 0;
    std::vector<std::uint64_t> keys_;      //!< full key per bucket
    std::vector<unsigned char> valid_;     //!< bucket occupancy
    std::vector<std::uint16_t> points_;    //!< buckets x width, flat
    std::uint64_t stores_ = 0;
};

} // namespace cluster
} // namespace cuttlesys

#endif // CUTTLESYS_CLUSTER_MEMO_HH
