#include "cache/mrc.hh"

#include <cmath>

#include "common/logging.hh"

namespace cuttlesys {

double
missRatio(const AppProfile &app, double ways)
{
    CS_ASSERT(ways >= 0.0, "negative way allocation");
    CS_ASSERT(app.mrCeil >= app.mrFloor && app.mrFloor >= 0.0 &&
              app.mrCeil <= 1.0,
              "mis-specified miss-ratio curve for ", app.name);
    const double decay = std::exp2(-ways / app.mrLambda);
    return app.mrFloor + (app.mrCeil - app.mrFloor) * decay;
}

double
mpki(const AppProfile &app, double ways)
{
    return app.apki * missRatio(app, ways);
}

std::vector<double>
marginalHitUtility(const AppProfile &app, std::size_t max_ways)
{
    std::vector<double> utility;
    utility.reserve(max_ways);
    for (std::size_t w = 0; w < max_ways; ++w) {
        const double before = mpki(app, static_cast<double>(w));
        const double after = mpki(app, static_cast<double>(w + 1));
        utility.push_back(before - after);
    }
    return utility;
}

} // namespace cuttlesys
