/**
 * @file
 * LLC way-partition bookkeeping and utility-based partitioning (UCP).
 *
 * Two consumers:
 *  - CuttleSys validates that the sum of per-job way allocations fits
 *    the LLC associativity (Eq. 3) and maps 0.5-way jobs in pairs onto
 *    shared physical ways.
 *  - The core-gating + way-partitioning baseline uses UCP
 *    (Qureshi & Patt, MICRO'06 lookahead algorithm) to split ways
 *    among active jobs, since that mechanism ships in real servers.
 */

#ifndef CUTTLESYS_CACHE_PARTITION_HH
#define CUTTLESYS_CACHE_PARTITION_HH

#include <cstddef>
#include <vector>

#include "apps/app_profile.hh"

namespace cuttlesys {

/**
 * A way-partition over a set of jobs: allocation[i] is the (possibly
 * fractional, >= 0) number of ways given to job i.
 */
struct WayPartition
{
    std::vector<double> allocation;

    /** Total allocated ways. */
    double totalWays() const;

    /** True iff the partition fits @p capacity ways. */
    bool fits(double capacity) const;
};

/**
 * Validate a CuttleSys-style allocation vector against the LLC
 * associativity; 0.5-way jobs must be pairable (an even count), since
 * two of them share one physical way.
 *
 * @return true when the allocation is realizable.
 */
bool realizable(const WayPartition &partition, double capacity);

/**
 * UCP lookahead partitioning: distribute @p capacity whole ways among
 * @p apps to maximize total hits, each app receiving at least
 * @p min_ways. Greedy by maximal marginal utility per way, which is
 * exactly the UCP lookahead rule for convex utility curves.
 */
WayPartition ucpPartition(const std::vector<AppProfile> &apps,
                          std::size_t capacity,
                          std::size_t min_ways = 1);

} // namespace cuttlesys

#endif // CUTTLESYS_CACHE_PARTITION_HH
