/**
 * @file
 * LLC miss-ratio curves.
 *
 * The cache behavior the scheduler cares about is one function per
 * application: LLC miss ratio as a function of allocated ways. We model
 * it as an exponential-decay working-set curve
 *
 *   missRatio(w) = mrFloor + (mrCeil - mrFloor) * 2^(-w / mrLambda)
 *
 * which matches the convex, saturating shape of measured SPEC miss
 * curves (Qureshi & Patt's UCP paper) and supports the fractional
 * 0.5-way allocations the runtime uses for way sharing.
 */

#ifndef CUTTLESYS_CACHE_MRC_HH
#define CUTTLESYS_CACHE_MRC_HH

#include <cstddef>
#include <vector>

#include "apps/app_profile.hh"

namespace cuttlesys {

/** LLC miss ratio of @p app when allocated @p ways ways (>= 0). */
double missRatio(const AppProfile &app, double ways);

/**
 * Misses per kilo-instruction for @p app at @p ways ways
 * (apki * missRatio).
 */
double mpki(const AppProfile &app, double ways);

/**
 * Marginal-utility table for UCP-style partitioning: entry w is the
 * number of extra LLC *hits* per kilo-instruction gained by growing
 * the allocation from w to w+1 ways, for w in [0, max_ways).
 */
std::vector<double> marginalHitUtility(const AppProfile &app,
                                       std::size_t max_ways);

} // namespace cuttlesys

#endif // CUTTLESYS_CACHE_MRC_HH
