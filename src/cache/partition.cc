#include "cache/partition.hh"

#include <algorithm>
#include <cmath>

#include "cache/mrc.hh"
#include "common/logging.hh"

namespace cuttlesys {

double
WayPartition::totalWays() const
{
    double total = 0.0;
    for (double w : allocation)
        total += w;
    return total;
}

bool
WayPartition::fits(double capacity) const
{
    return totalWays() <= capacity + 1e-9;
}

bool
realizable(const WayPartition &partition, double capacity)
{
    if (!partition.fits(capacity))
        return false;
    std::size_t half_way_jobs = 0;
    for (double w : partition.allocation) {
        if (w < 0.0)
            return false;
        const double frac = w - std::floor(w);
        if (frac == 0.0)
            continue;
        if (std::abs(frac - 0.5) < 1e-9) {
            ++half_way_jobs;
        } else {
            return false; // only 0.5-way fractions are realizable
        }
    }
    // Two half-way jobs share one physical way; an odd count leaves a
    // half-way unusable but is still realizable (it occupies a full
    // physical way). Always OK.
    return true;
}

WayPartition
ucpPartition(const std::vector<AppProfile> &apps, std::size_t capacity,
             std::size_t min_ways)
{
    WayPartition partition;
    if (apps.empty())
        return partition;
    CS_ASSERT(min_ways * apps.size() <= capacity,
              "UCP: cannot give ", apps.size(), " apps ", min_ways,
              " ways each out of ", capacity);

    const std::size_t n = apps.size();
    std::vector<std::size_t> ways(n, min_ways);
    std::size_t remaining = capacity - min_ways * n;

    // Precompute marginal utilities; curves are convex, so repeatedly
    // granting the globally best next way is the UCP lookahead result.
    std::vector<std::vector<double>> utility(n);
    for (std::size_t i = 0; i < n; ++i)
        utility[i] = marginalHitUtility(apps[i], capacity);

    while (remaining > 0) {
        std::size_t best_app = 0;
        double best_gain = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (ways[i] >= capacity)
                continue;
            const double gain = utility[i][ways[i]];
            if (gain > best_gain) {
                best_gain = gain;
                best_app = i;
            }
        }
        ++ways[best_app];
        --remaining;
    }

    partition.allocation.assign(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        partition.allocation[i] = static_cast<double>(ways[i]);
    return partition;
}

} // namespace cuttlesys
