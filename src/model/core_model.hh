/**
 * @file
 * Analytical performance model of one reconfigurable core.
 *
 * Replaces zsim's cycle-level core simulation (see DESIGN.md for the
 * substitution argument). CPI is additively decomposed per the
 * classic interval-analysis view:
 *
 *   cpi(app, {wFE,wBE,wLS}, ways) =
 *       cpiBase * (1 + sum over sections s of
 *                      sens_s * ((6 / w_s)^exp_s - 1))
 *     + (apki / 1000) * (llcLat + missRatio(ways) * dramLat * memScale)
 *       * memOverlap * (1 + kLsMemCoupling * (6 / wLS - 1))
 *
 * The final term couples the load/store queue width to memory-level
 * parallelism: a narrower LSQ exposes more of the miss latency, which
 * is what makes memory-heavy services like xapian LS-bound (Fig 1).
 * IPC is additionally capped by the narrower of the FE/BE widths
 * (a 2-wide front end cannot sustain IPC > 2) and scaled by the
 * deterministic per-(app, config) residual.
 */

#ifndef CUTTLESYS_MODEL_CORE_MODEL_HH
#define CUTTLESYS_MODEL_CORE_MODEL_HH

#include "apps/app_profile.hh"
#include "config/job_config.hh"
#include "config/params.hh"

namespace cuttlesys {

/** LSQ-width to memory-level-parallelism coupling strength. */
inline constexpr double kLsMemCoupling = 0.18;

/** Width-cap utilization: peak sustainable IPC = this * min(FE, BE). */
inline constexpr double kWidthCapUtilization = 0.95;

/**
 * Core clock in GHz; reconfigurable cores pay the paper's 1.67%
 * frequency penalty relative to fixed-function cores.
 */
double coreFrequencyGHz(const SystemParams &params,
                        bool reconfigurable = true);

/**
 * Instructions per cycle of @p app on core configuration @p config
 * with @p ways LLC ways.
 *
 * @param mem_scale multiplies the DRAM latency; the multicore
 *        simulator uses it to model memory-bandwidth contention
 *        between co-scheduled jobs (1.0 = uncontended).
 */
double coreIpc(const AppProfile &app, const JobConfig &config,
               const SystemParams &params, double mem_scale = 1.0);

/**
 * Instructions per second: coreIpc * frequency, including the
 * reconfiguration frequency penalty when @p reconfigurable.
 */
double coreIps(const AppProfile &app, const JobConfig &config,
               const SystemParams &params, double mem_scale = 1.0,
               bool reconfigurable = true);

/** Billions of instructions per second (the paper's BIPS). */
double coreBips(const AppProfile &app, const JobConfig &config,
                const SystemParams &params, double mem_scale = 1.0,
                bool reconfigurable = true);

/**
 * LLC miss bandwidth this job generates, in GB/s, assuming 64-byte
 * lines. Input to the memory-contention fixpoint in MulticoreSim.
 */
double missBandwidthGBs(const AppProfile &app, const JobConfig &config,
                        const SystemParams &params,
                        double mem_scale = 1.0,
                        bool reconfigurable = true);

} // namespace cuttlesys

#endif // CUTTLESYS_MODEL_CORE_MODEL_HH
