#include "model/core_model.hh"

#include <algorithm>
#include <cmath>

#include "cache/mrc.hh"
#include "common/logging.hh"

namespace cuttlesys {

namespace {

/** Stall-CPI contribution of one section at the given width. */
double
sectionStall(double sens, double exp, int width)
{
    return sens * (std::pow(6.0 / static_cast<double>(width), exp) - 1.0);
}

} // namespace

double
coreFrequencyGHz(const SystemParams &params, bool reconfigurable)
{
    const double penalty =
        reconfigurable ? (1.0 - params.reconfigFreqPenalty) : 1.0;
    return params.frequencyGHz * penalty;
}

double
coreIpc(const AppProfile &app, const JobConfig &config,
        const SystemParams &params, double mem_scale)
{
    CS_ASSERT(mem_scale >= 1.0, "mem_scale must be >= 1 (got ",
              mem_scale, ")");
    const CoreConfig &core = config.core();

    // Section stalls scale the base CPI (a lost issue slot costs in
    // proportion to how fast the core would otherwise run): ILP-rich
    // codes degrade toward the narrower width cap rather than
    // collapsing, which is what measured reconfigurable-core data
    // (Flicker, AnyCore) shows.
    double stall = 0.0;
    stall += sectionStall(app.feSens, app.feExp, core.frontEnd());
    stall += sectionStall(app.beSens, app.beExp, core.backEnd());
    stall += sectionStall(app.lsSens, app.lsExp, core.loadStore());
    double cpi = app.cpiBase * (1.0 + stall);

    const double mr = missRatio(app, config.cacheWays());
    const double miss_lat = static_cast<double>(params.llcLatencyCycles) +
        mr * static_cast<double>(params.dramLatencyCycles) * mem_scale;
    const double mlp = app.memOverlap *
        (1.0 + kLsMemCoupling * (6.0 / core.loadStore() - 1.0));
    cpi += app.apki / 1000.0 * miss_lat * mlp;

    double ipc = 1.0 / cpi;

    // A section cannot retire more instructions per cycle than its
    // provisioned width sustains.
    const double cap = kWidthCapUtilization *
        static_cast<double>(std::min(core.frontEnd(), core.backEnd()));
    ipc = std::min(ipc, cap);

    // Deterministic model residual, keyed by the joint configuration.
    ipc *= residualFactor(app, config.index());
    return ipc;
}

double
coreIps(const AppProfile &app, const JobConfig &config,
        const SystemParams &params, double mem_scale, bool reconfigurable)
{
    return coreIpc(app, config, params, mem_scale) *
           coreFrequencyGHz(params, reconfigurable) * 1e9;
}

double
coreBips(const AppProfile &app, const JobConfig &config,
         const SystemParams &params, double mem_scale,
         bool reconfigurable)
{
    return coreIps(app, config, params, mem_scale, reconfigurable) / 1e9;
}

double
missBandwidthGBs(const AppProfile &app, const JobConfig &config,
                 const SystemParams &params, double mem_scale,
                 bool reconfigurable)
{
    const double ips = coreIps(app, config, params, mem_scale,
                               reconfigurable);
    const double misses_per_sec =
        ips / 1000.0 * mpki(app, config.cacheWays());
    return misses_per_sec * 64.0 / 1e9;
}

} // namespace cuttlesys
