#include "check/schedule_validator.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace cuttlesys {
namespace check {

namespace {

bool
legalWidth(int width)
{
    for (const int w : kSectionWidths) {
        if (width == w)
            return true;
    }
    return false;
}

/**
 * Whether @p config is a point of the m x p grid. Works on raw member
 * values only: a corrupted configuration must be diagnosable without
 * calling accessors (cacheWays(), index(), toString()) that assume
 * grid membership.
 */
bool
inGrid(const JobConfig &config)
{
    const CoreConfig &core = config.core();
    return legalWidth(core.frontEnd()) && legalWidth(core.backEnd()) &&
           legalWidth(core.loadStore()) &&
           config.cacheRank() < kNumCacheAllocs;
}

std::string
describeRaw(const JobConfig &config)
{
    std::ostringstream oss;
    oss << "{" << config.core().frontEnd() << ","
        << config.core().backEnd() << "," << config.core().loadStore()
        << "}/rank" << config.cacheRank();
    return oss.str();
}

} // namespace

const char *
invariantName(Invariant inv)
{
    switch (inv) {
      case Invariant::DecisionShape: return "decision-shape";
      case Invariant::ConfigGrid:    return "config-grid";
      case Invariant::WayBudget:     return "way-budget";
      case Invariant::PowerCap:      return "power-cap";
      case Invariant::CoreCount:     return "core-count";
      case Invariant::CoreDisjoint:  return "core-disjoint";
      case Invariant::GatedRelease:  return "gated-release";
    }
    return "?";
}

ScheduleValidator::ScheduleValidator(ValidatorOptions options)
    : options_(options)
{
}

void
ScheduleValidator::reset()
{
    quantaChecked_ = 0;
    violationCount_ = 0;
    perInvariant_.fill(0);
    violations_.clear();
}

void
ScheduleValidator::report(Invariant inv, const DecisionContext &ctx,
                          std::string detail,
                          std::vector<Violation> &quantum_violations)
{
    ++violationCount_;
    ++perInvariant_[static_cast<std::size_t>(inv)];

    Violation v;
    v.invariant = inv;
    v.slice = ctx.sliceIndex;
    v.detail = std::move(detail);

    std::string message = invariantName(inv);
    message += ": ";
    message += v.detail;
    if (ctx.record)
        ctx.record->invariantViolations.push_back(message);
    if (options_.failMode == FailMode::Log) {
        warn("schedule invariant violated (slice ", v.slice, "): ",
             message);
    }

    quantum_violations.push_back(v);
    if (violations_.size() < options_.maxStoredViolations)
        violations_.push_back(std::move(v));
}

bool
ScheduleValidator::validate(const SliceDecision &decision,
                            const DecisionContext &ctx)
{
    CS_ASSERT(ctx.params != nullptr, "validator needs SystemParams");
    const SystemParams &params = *ctx.params;
    ++quantaChecked_;

    std::vector<Violation> found;
    auto fail = [&](Invariant inv, const std::string &detail) {
        report(inv, ctx, detail, found);
    };

    // --- shape: the decision must address every job exactly once ----
    const std::size_t jobs = decision.batchConfigs.size();
    bool shape_ok = true;
    if (jobs != ctx.numBatchJobs ||
        decision.batchActive.size() != ctx.numBatchJobs) {
        std::ostringstream oss;
        oss << "decision covers " << jobs << " configs / "
            << decision.batchActive.size() << " active flags for "
            << ctx.numBatchJobs << " batch jobs";
        fail(Invariant::DecisionShape, oss.str());
        shape_ok = false;
    }
    if (decision.overheadSec < 0.0 ||
        decision.overheadSec > params.timesliceSec) {
        std::ostringstream oss;
        oss << "overhead " << decision.overheadSec
            << "s outside [0, " << params.timesliceSec << "s]";
        fail(Invariant::DecisionShape, oss.str());
    }

    // --- grid membership (checked on raw members so a corrupted
    // configuration cannot crash the later accessors) ----------------
    bool grid_ok = inGrid(decision.lcConfig);
    if (!grid_ok) {
        fail(Invariant::ConfigGrid,
             "lc config " + describeRaw(decision.lcConfig) +
                 " outside the m x p grid");
    }
    // Member scratch: the happy path of validate() must stay
    // heap-free so per-quantum validation can remain on inside the
    // zero-allocation steady state.
    std::vector<bool> &job_grid_ok = gridScratch_;
    job_grid_ok.assign(jobs, true);
    for (std::size_t j = 0; j < jobs; ++j) {
        if (inGrid(decision.batchConfigs[j]))
            continue;
        job_grid_ok[j] = false;
        grid_ok = false;
        std::ostringstream oss;
        oss << "batch job " << j << " config "
            << describeRaw(decision.batchConfigs[j])
            << " outside the m x p grid";
        fail(Invariant::ConfigGrid, oss.str());
    }

    const bool paired = shape_ok &&
                        decision.batchActive.size() == jobs;
    bool any_active = false;
    if (paired) {
        for (std::size_t j = 0; j < jobs; ++j)
            any_active = any_active || decision.batchActive[j];
    }

    // --- LLC way budget over the jobs that actually hold cache ------
    if (grid_ok && paired) {
        double ways = decision.lcConfig.cacheWays();
        for (std::size_t j = 0; j < jobs; ++j) {
            if (decision.batchActive[j])
                ways += decision.batchConfigs[j].cacheWays();
        }
        const double llc = static_cast<double>(params.llcWays);
        if (ways > llc + options_.wayToleranceWays) {
            std::ostringstream oss;
            oss << "lc " << decision.lcConfig.cacheWays()
                << "w + active batch allocations total " << ways
                << "w > llc " << llc << "w";
            fail(Invariant::WayBudget, oss.str());
        }
    }

    // --- power cap, audited against the scheduler's own claim -------
    // The decision cannot carry a power estimate, so the check uses
    // the telemetry record's enforcedPowerW / batchPowerBudgetW pair.
    // A schedule that gated every job is exempt: with nothing left to
    // gate, enforcement did all it could against an unmeetable cap.
    if (ctx.capEnforced && ctx.record &&
        ctx.record->enforcedPowerW >= 0.0 && any_active &&
        ctx.record->enforcedPowerW >
            ctx.record->batchPowerBudgetW + options_.powerToleranceW) {
        std::ostringstream oss;
        oss << "enforced power estimate " << ctx.record->enforcedPowerW
            << "W exceeds budget " << ctx.record->batchPowerBudgetW
            << "W with active jobs remaining";
        fail(Invariant::PowerCap, oss.str());
    }

    // --- core accounting ---------------------------------------------
    if (decision.lcCores == 0 || decision.lcCores > params.numCores) {
        std::ostringstream oss;
        oss << "lc cluster of " << decision.lcCores
            << " cores on a " << params.numCores << "-core machine";
        fail(Invariant::CoreCount, oss.str());
    } else if (any_active && decision.lcCores >= params.numCores) {
        // Batch jobs time-multiplex legally, but they need at least
        // one core that is not owned by the LC cluster.
        std::ostringstream oss;
        oss << "active batch jobs but the lc cluster owns all "
            << params.numCores << " cores";
        fail(Invariant::CoreDisjoint, oss.str());
    }

    // --- gated cores must have released their allocation ------------
    if (paired) {
        for (std::size_t j = 0; j < jobs; ++j) {
            if (decision.batchActive[j] || !job_grid_ok[j])
                continue;
            if (decision.batchConfigs[j].cacheRank() != 0) {
                std::ostringstream oss;
                oss << "gated batch job " << j << " still holds "
                    << decision.batchConfigs[j].cacheWays()
                    << " llc ways";
                fail(Invariant::GatedRelease, oss.str());
            }
        }
    }

    if (!found.empty() && options_.failMode == FailMode::Panic) {
        panic("schedule invariant violated (slice ", ctx.sliceIndex,
              ", ", found.size(), " violation(s)): ",
              invariantName(found.front().invariant), ": ",
              found.front().detail);
    }
    return found.empty();
}

} // namespace check
} // namespace cuttlesys
