/**
 * @file
 * Structural diff over two quantum traces for deterministic replay.
 *
 * Wall-clock telemetry (phase timings, measured overheads) legitimately
 * differs between two runs of the same seed, so a byte-compare of the
 * raw traces cannot be the determinism oracle. The replay checker
 * re-runs a colocation with an identical seed and compares only the
 * decision-structural fields of the two traces — chosen
 * configurations, core counts, gating victims, and the (deterministic
 * given identical decisions) executed outcomes. Any mismatch means
 * thread-schedule nondeterminism leaked into the scheduling pipeline,
 * e.g. a racy parallel reconstruction whose float noise flips a
 * search argmax.
 */

#ifndef CUTTLESYS_CHECK_TRACE_DIFF_HH
#define CUTTLESYS_CHECK_TRACE_DIFF_HH

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/quantum_record.hh"

namespace cuttlesys {
namespace check {

/** One structural field that differed between the two traces. */
struct FieldMismatch
{
    std::size_t slice = 0;
    std::string field;
    std::string lhs;
    std::string rhs;
};

/** Outcome of a structural trace comparison. */
struct TraceDiff
{
    std::size_t recordsA = 0;
    std::size_t recordsB = 0;
    std::size_t comparedFields = 0; //!< fields compared across quanta
    std::vector<FieldMismatch> mismatches;

    bool identical() const
    {
        return recordsA == recordsB && mismatches.empty();
    }

    /** Human-readable report, at most @p max_lines mismatch lines. */
    std::string toString(std::size_t max_lines = 20) const;
};

/**
 * The scan's cf / queue-estimate / no-feasible labels depend on which
 * prediction qualified first, which float noise can flip even when
 * the chosen configuration is identical; replay compares the coarse
 * class instead. Measurement-driven paths stay distinct.
 */
const char *lcPathClass(telemetry::LcPath path);

/** Structurally compare two traces of the same run configuration. */
TraceDiff
diffDecisionTraces(const std::vector<telemetry::QuantumRecord> &a,
                   const std::vector<telemetry::QuantumRecord> &b);

} // namespace check
} // namespace cuttlesys

#endif // CUTTLESYS_CHECK_TRACE_DIFF_HH
