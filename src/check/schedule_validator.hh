/**
 * @file
 * Schedule-invariant validator: a runtime oracle over SliceDecisions.
 *
 * CuttleSys's contract is that every decision quantum emits a jointly
 * feasible allocation (Sections IV-VI): per-job configurations drawn
 * from the m x p grid, LLC ways summing to at most the machine's way
 * count, the enforced power estimate under the cap, LC and batch
 * cores disjoint, and gated cores holding the smallest (released)
 * allocation. PR 2's bugfix batch showed these invariants are exactly
 * where the implementation silently drifts — way-infeasible knapsack
 * seeds, cap victims keeping their ways — so the validator converts
 * them into machine-checked properties: it audits every quantum's
 * decision, attaches to a Scheduler exactly like the telemetry trace,
 * and runs as a zero-config oracle inside the evaluation driver for
 * every scheduler, baselines included.
 *
 * Violations can be recorded into the quantum's telemetry record,
 * logged as warnings, or escalated to a panic (the default inside the
 * driver, so any infeasible decision fails the test that produced it).
 */

#ifndef CUTTLESYS_CHECK_SCHEDULE_VALIDATOR_HH
#define CUTTLESYS_CHECK_SCHEDULE_VALIDATOR_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "config/params.hh"
#include "sim/multicore.hh"
#include "telemetry/quantum_record.hh"

namespace cuttlesys {
namespace check {

/** What the validator does when an invariant fails. */
enum class FailMode : std::uint8_t
{
    Record, //!< store (and stamp into the telemetry record) only
    Log,    //!< additionally warn() per violation
    Panic,  //!< throw PanicError on the first violating quantum
};

/** The machine invariants a decision is audited against. */
enum class Invariant : std::uint8_t
{
    DecisionShape = 0, //!< config/active vectors sized to the machine
    ConfigGrid,        //!< every config is a legal m x p grid point
    WayBudget,         //!< LC + active batch ways fit the shared LLC
    PowerCap,          //!< enforced power estimate respects the cap
    CoreCount,         //!< LC core count fits the chip (and is >= 1)
    CoreDisjoint,      //!< active batch jobs have a non-LC core left
    GatedRelease,      //!< gated jobs hold the smallest allocation
};

inline constexpr std::size_t kNumInvariants = 7;

/** Printable name of an invariant ("way-budget", ...). */
const char *invariantName(Invariant inv);

/** One invariant failure, with a human-readable diagnosis. */
struct Violation
{
    Invariant invariant = Invariant::DecisionShape;
    std::size_t slice = 0;
    std::string detail;
};

/** Validator configuration. */
struct ValidatorOptions
{
    FailMode failMode = FailMode::Panic;
    /** Slack for way sums (fractional 0.5-way allocations add). */
    double wayToleranceWays = 1e-9;
    /** Slack for the enforced-power-vs-budget comparison. */
    double powerToleranceW = 1e-6;
    /** Violations kept verbatim; the counters never saturate. */
    std::size_t maxStoredViolations = 64;
};

/**
 * Everything about the quantum the decision cannot carry itself. The
 * telemetry record is optional: when present, violations are stamped
 * into it (so they reach the JSONL trace) and the scheduler's own
 * cap-enforcement claim (enforcedPowerW vs batchPowerBudgetW) is
 * audited.
 */
struct DecisionContext
{
    const SystemParams *params = nullptr; //!< required
    std::size_t numBatchJobs = 0;         //!< jobs the machine hosts
    std::size_t sliceIndex = 0;
    double powerBudgetW = 0.0; //!< this slice's chip-level cap
    /** Whether the scheduler claims to enforce the power cap at all
     *  (the no-gating reference deliberately does not). */
    bool capEnforced = true;
    telemetry::QuantumRecord *record = nullptr;
};

/** Audits one SliceDecision per quantum against machine invariants. */
class ScheduleValidator
{
  public:
    explicit ScheduleValidator(ValidatorOptions options = {});

    /**
     * Audit @p decision. Returns true when every invariant holds.
     * Under FailMode::Panic a violating quantum throws PanicError
     * after all of its violations are counted and stamped into the
     * telemetry record, so a trace survives the escalation.
     */
    bool validate(const SliceDecision &decision,
                  const DecisionContext &ctx);

    /** Quanta audited since construction / reset(). */
    std::size_t quantaChecked() const { return quantaChecked_; }

    /** Total violations across all audited quanta. */
    std::size_t violationCount() const { return violationCount_; }

    /** Stored violations (capped at maxStoredViolations). */
    const std::vector<Violation> &violations() const
    {
        return violations_;
    }

    /** Violation count for one invariant. */
    std::size_t count(Invariant inv) const
    {
        return perInvariant_[static_cast<std::size_t>(inv)];
    }

    const ValidatorOptions &options() const { return options_; }

    /** Forget all counters and stored violations. */
    void reset();

  private:
    void report(Invariant inv, const DecisionContext &ctx,
                std::string detail,
                std::vector<Violation> &quantum_violations);

    ValidatorOptions options_;
    std::size_t quantaChecked_ = 0;
    std::size_t violationCount_ = 0;
    std::array<std::size_t, kNumInvariants> perInvariant_{};
    std::vector<Violation> violations_;
    std::vector<bool> gridScratch_; //!< per-job grid flags, reused
};

} // namespace check
} // namespace cuttlesys

#endif // CUTTLESYS_CHECK_SCHEDULE_VALIDATOR_HH
