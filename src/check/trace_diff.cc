#include "check/trace_diff.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

namespace cuttlesys {
namespace check {

namespace {

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
formatVector(const std::vector<std::size_t> &v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(v[i]);
    }
    out += ']';
    return out;
}

std::string
formatVector(const std::vector<std::int32_t> &v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(v[i]);
    }
    out += ']';
    return out;
}

std::string
formatVector(const std::vector<std::int64_t> &v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(v[i]);
    }
    out += ']';
    return out;
}

std::string
formatVector(const std::vector<double> &v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ',';
        out += formatDouble(v[i]);
    }
    out += ']';
    return out;
}

/** Accumulates field comparisons for one pair of quanta. */
class RecordDiffer
{
  public:
    RecordDiffer(TraceDiff &diff, std::size_t slice)
        : diff_(diff), slice_(slice)
    {
    }

    void cmp(const char *field, double a, double b)
    {
        // Exact: both values took the same code path through the same
        // deterministic simulator, so any difference is real.
        note(field, a == b, formatDouble(a), formatDouble(b));
    }

    void cmp(const char *field, std::size_t a, std::size_t b)
    {
        note(field, a == b, std::to_string(a), std::to_string(b));
    }

    void cmp(const char *field, int a, int b)
    {
        note(field, a == b, std::to_string(a), std::to_string(b));
    }

    void cmp(const char *field, bool a, bool b)
    {
        note(field, a == b, a ? "true" : "false",
             b ? "true" : "false");
    }

    void cmp(const char *field, const std::string &a,
             const std::string &b)
    {
        note(field, a == b, a, b);
    }

    void cmp(const char *field, const std::vector<std::size_t> &a,
             const std::vector<std::size_t> &b)
    {
        note(field, a == b, formatVector(a), formatVector(b));
    }

    void cmp(const char *field, const std::vector<std::int32_t> &a,
             const std::vector<std::int32_t> &b)
    {
        note(field, a == b, formatVector(a), formatVector(b));
    }

    void cmp(const char *field, const std::vector<std::int64_t> &a,
             const std::vector<std::int64_t> &b)
    {
        note(field, a == b, formatVector(a), formatVector(b));
    }

    void cmp(const char *field, const std::vector<double> &a,
             const std::vector<double> &b)
    {
        note(field, a == b, formatVector(a), formatVector(b));
    }

  private:
    void note(const char *field, bool equal, std::string lhs,
              std::string rhs)
    {
        ++diff_.comparedFields;
        if (equal)
            return;
        FieldMismatch m;
        m.slice = slice_;
        m.field = field;
        m.lhs = std::move(lhs);
        m.rhs = std::move(rhs);
        diff_.mismatches.push_back(std::move(m));
    }

    TraceDiff &diff_;
    std::size_t slice_;
};

} // namespace

const char *
lcPathClass(telemetry::LcPath path)
{
    switch (path) {
      case telemetry::LcPath::None:
        return "none";
      case telemetry::LcPath::ColdStart:
        return "cold-start";
      case telemetry::LcPath::ViolationEscalate:
        return "violation-escalate";
      case telemetry::LcPath::ViolationRelocate:
        return "violation-relocate";
      case telemetry::LcPath::CfFeasible:
      case telemetry::LcPath::QueueFeasible:
      case telemetry::LcPath::NoFeasible:
        return "scan";
      case telemetry::LcPath::StaticPolicy:
        return "static";
    }
    return "?";
}

TraceDiff
diffDecisionTraces(const std::vector<telemetry::QuantumRecord> &a,
                   const std::vector<telemetry::QuantumRecord> &b)
{
    TraceDiff diff;
    diff.recordsA = a.size();
    diff.recordsB = b.size();

    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        const telemetry::QuantumRecord &ra = a[i];
        const telemetry::QuantumRecord &rb = b[i];
        RecordDiffer d(diff, ra.slice);

        // Identity and offered conditions. The node stamp matters in
        // fleet replays: two traces can agree on every per-slice
        // decision yet disagree about which node executed it, which
        // is a placement divergence, not a clean replay.
        d.cmp("node", ra.node, rb.node);
        d.cmp("slice", ra.slice, rb.slice);
        d.cmp("t", ra.timeSec, rb.timeSec);
        d.cmp("sched", ra.scheduler, rb.scheduler);
        d.cmp("load", ra.loadFraction, rb.loadFraction);
        d.cmp("budget_w", ra.powerBudgetW, rb.powerBudgetW);
        d.cmp("profiled_lc_cores", ra.profiledLcCores,
              rb.profiledLcCores);

        // Previous slice's feedback: deterministic when every prior
        // decision matched.
        d.cmp("measured.tail", ra.measuredTailSec, rb.measuredTailSec);
        d.cmp("measured.util", ra.measuredUtil, rb.measuredUtil);
        d.cmp("measured.completed", ra.measuredCompleted,
              rb.measuredCompleted);
        d.cmp("measured.violation", ra.measuredViolation,
              rb.measuredViolation);
        d.cmp("measured.tail_observed", ra.tailObserved,
              rb.tailObserved);
        d.cmp("measured.polluted", ra.pollutedSlice, rb.pollutedSlice);

        // The LC decision proper.
        d.cmp("lc.path_class", std::string(lcPathClass(ra.lcPath)),
              std::string(lcPathClass(rb.lcPath)));
        d.cmp("lc.config_index", ra.lcConfigIndex, rb.lcConfigIndex);
        d.cmp("lc.config", ra.lcConfigName, rb.lcConfigName);
        d.cmp("lc.cores", ra.lcCores, rb.lcCores);
        d.cmp("lc.core_delta", ra.lcCoreDelta, rb.lcCoreDelta);

        // Cap enforcement's structural outcome.
        d.cmp("enforce.victims", ra.capVictims, rb.capVictims);
        d.cmp("enforce.reclaimed_ways", ra.reclaimedWays,
              rb.reclaimedWays);

        // Executed slice: pure function of the decision sequence.
        d.cmp("executed.tail", ra.executedTailSec, rb.executedTailSec);
        d.cmp("executed.power_w", ra.executedPowerW,
              rb.executedPowerW);
        d.cmp("executed.qos_violated", ra.qosViolated, rb.qosViolated);
        d.cmp("executed.gmean_bips", ra.gmeanBips, rb.gmeanBips);

        // The stability gate's routing. The path taken (and why the
        // gate forced a full quantum) must replay bitwise: a trace
        // that reuses where the reference re-searched diverged even
        // when both landed on the same schedule.
        d.cmp("decision.path",
              std::string(telemetry::decisionPathName(ra.decisionPath)),
              std::string(
                  telemetry::decisionPathName(rb.decisionPath)));
        d.cmp("decision.invalidation",
              std::string(telemetry::invalidationReasonName(
                  ra.invalidationReason)),
              std::string(telemetry::invalidationReasonName(
                  rb.invalidationReason)));
        d.cmp("decision.since_full", ra.quantaSinceFull,
              rb.quantaSinceFull);

        // Tenancy: who held each slot and who was evicted are part of
        // the deterministic decision sequence under fair-share
        // ordering, so replay must reproduce them bitwise too.
        d.cmp("tenancy.accounts", ra.slotAccounts, rb.slotAccounts);
        d.cmp("tenancy.bips", ra.slotBips, rb.slotBips);
        d.cmp("tenancy.cores", ra.slotCores, rb.slotCores);
        d.cmp("tenancy.preempted", ra.preemptedAccounts,
              rb.preemptedAccounts);

        // DAG workflows: which instance/task held each slot, the
        // artifact-cache outcome of this quantum's placements, and
        // which workflows finished — all products of the deterministic
        // completion/release/placement order, so replay must match.
        d.cmp("dag.workflows", ra.slotWorkflows, rb.slotWorkflows);
        d.cmp("dag.tasks", ra.slotDagTasks, rb.slotDagTasks);
        d.cmp("dag.hits", ra.artifactHits, rb.artifactHits);
        d.cmp("dag.misses", ra.artifactMisses, rb.artifactMisses);
        d.cmp("dag.transfer_bytes", ra.transferBytes,
              rb.transferBytes);
        d.cmp("dag.done", ra.completedWorkflows,
              rb.completedWorkflows);
        d.cmp("dag.done_accounts", ra.completedAccounts,
              rb.completedAccounts);
        d.cmp("dag.done_makespans", ra.completedMakespans,
              rb.completedMakespans);
    }
    return diff;
}

std::string
TraceDiff::toString(std::size_t max_lines) const
{
    std::ostringstream oss;
    if (identical()) {
        oss << "traces identical: " << recordsA << " quanta, "
            << comparedFields << " fields compared";
        return oss.str();
    }
    oss << "traces differ: " << recordsA << " vs " << recordsB
        << " quanta, " << mismatches.size() << " mismatched field(s) "
        << "of " << comparedFields << " compared";
    const std::size_t lines = std::min(max_lines, mismatches.size());
    for (std::size_t i = 0; i < lines; ++i) {
        const FieldMismatch &m = mismatches[i];
        oss << "\n  slice " << m.slice << " " << m.field << ": "
            << m.lhs << " != " << m.rhs;
    }
    if (lines < mismatches.size())
        oss << "\n  ... " << mismatches.size() - lines << " more";
    return oss.str();
}

} // namespace check
} // namespace cuttlesys
