/**
 * @file
 * Decision-quantum hot-path timing: the combined per-quantum cost of
 * the three matrix reconstructions plus the parallel DDS search,
 * before and after the hot-path optimizations of this change set.
 *
 * "before" reproduces the seed configuration's algorithmic work:
 * cold-start SGD every quantum (no factor reuse), convergence checked
 * on every observed cell, and full evaluatePoint per DDS candidate.
 * "after" is the shipped configuration: cross-quantum factor warm
 * starts, subsampled convergence checks, and delta-evaluated DDS.
 * Both run on the persistent pool, so the measured ratio understates
 * the speedup over the seed (which also paid a thread spawn + join
 * fleet per quantum).
 *
 * Emits BENCH_hotpath.json next to stdout for scripted comparison.
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "cf/engine.hh"
#include "common/thread_pool.hh"
#include "search/dds.hh"
#include "telemetry/quantum_trace.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kLiveJobs = 17;
constexpr std::size_t kBatchJobs = 16;
constexpr std::size_t kQuanta = 12;

/** One decision quantum's model work, parameterized by fidelity. */
struct HotPath
{
    CfEngine bips;
    CfEngine power;
    CfEngine latency;
    Matrix predBips, predPower, predLatency;
    Matrix searchBips{kBatchJobs, kNumJobConfigs};
    Matrix searchPower{kBatchJobs, kNumJobConfigs};
    DdsOptions dds;
    Rng rng{83};
    /** Non-null: per-quantum tracing with the sink disabled. */
    telemetry::QuantumTrace *trace = nullptr;

    HotPath(bool warm_start, std::size_t conv_samples, bool delta)
        : bips(trainingTables().bips, kLiveJobs, kNumJobConfigs),
          power(trainingTables().power, kLiveJobs, kNumJobConfigs),
          latency(trainingTables().latency, 1, kNumJobConfigs)
    {
        for (CfEngine *e : {&bips, &power, &latency}) {
            e->setFactorWarmStart(warm_start);
            e->options().convergenceSamples = conv_samples;
        }
        bips.options().threads = 4;
        power.options().threads = 4;
        latency.options().threads = 2;
        latency.options().logTransform = true;
        dds.threads = 8;
        dds.useDeltaEval = delta;

        // Two profiling samples per live row, like the runtime's
        // steady state.
        for (std::size_t j = 0; j < kLiveJobs; ++j) {
            bips.observe(j, 0, rng.uniform(0.5, 8.0));
            bips.observe(j, kNumJobConfigs - 1, rng.uniform(0.5, 8.0));
            power.observe(j, 0, rng.uniform(0.5, 3.0));
            power.observe(j, kNumJobConfigs - 1, rng.uniform(0.5, 3.0));
        }
        latency.observe(0, kNumJobConfigs - 1, 5e-3);
    }

    /** One quantum: ingest a fresh cell, reconstruct x3, search. */
    double quantum(std::size_t slice)
    {
        if (trace) {
            trace->begin(slice, static_cast<double>(slice) * 0.1);
            trace->record().scheduler = "bench-hotpath";
            trace->record().batchPowerBudgetW = 30.0;
            trace->record().cacheBudgetWays = 28.0;
        }

        // A trickle of new observations, as the runtime sees.
        const auto cfg = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(
                                  kNumJobConfigs) - 1));
        bips.observe(slice % kLiveJobs, cfg, rng.uniform(0.5, 8.0));
        power.observe(slice % kLiveJobs, cfg, rng.uniform(0.5, 3.0));

        {
            telemetry::PhaseTimer timer(
                trace, telemetry::Phase::Reconstruct);
            ThreadPool::global().parallelFor(3,
                                             [&](std::size_t metric) {
                switch (metric) {
                  case 0: bips.predictInto(predBips); break;
                  case 1: power.predictInto(predPower); break;
                  default: latency.predictInto(predLatency); break;
                }
            });
        }

        for (std::size_t j = 0; j < kBatchJobs; ++j) {
            for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
                searchBips(j, c) = predBips(1 + j, c);
                searchPower(j, c) = predPower(1 + j, c);
            }
        }
        ObjectiveContext ctx;
        ctx.bips = &searchBips;
        ctx.power = &searchPower;
        ctx.powerBudgetW = 30.0;
        ctx.cacheBudgetWays = 28.0;
        dds.seed = 11 + slice; // fresh exploration each quantum
        SearchResult found;
        {
            telemetry::PhaseTimer timer(
                trace, telemetry::Phase::Search);
            found = parallelDds(ctx, dds);
        }

        if (trace) {
            telemetry::QuantumRecord &rec = trace->record();
            rec.searchEvaluations = found.evaluations;
            rec.searchObjective = found.metrics.objective;
            rec.searchPowerW = found.metrics.powerW;
            rec.searchWays = found.metrics.cacheWays;
            trace->end();
        }
        return found.metrics.objective;
    }
};

struct RunStats
{
    double meanMs = 0.0;
    double minMs = 0.0;
    double meanObjective = 0.0;
};

RunStats
run(bool warm_start, std::size_t conv_samples, bool delta,
    bool traced = false)
{
    HotPath path(warm_start, conv_samples, delta);
    // Sink stays null: measures the record-fill + phase-timer cost of
    // compiled-in telemetry without any serialization.
    telemetry::QuantumTrace trace;
    if (traced)
        path.trace = &trace;
    // Untimed cold quantum: fills the factor caches for the "after"
    // configuration, and gives both configurations identical warmup.
    path.quantum(0);

    RunStats stats;
    stats.minMs = 1e18;
    for (std::size_t q = 1; q <= kQuanta; ++q) {
        const auto start = Clock::now();
        const double objective = path.quantum(q);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      start).count();
        stats.meanMs += ms;
        stats.minMs = std::min(stats.minMs, ms);
        stats.meanObjective += objective;
    }
    stats.meanMs /= kQuanta;
    stats.meanObjective /= kQuanta;
    return stats;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    banner("bench_hotpath", "decision-quantum hot path before/after",
           "Table II budget: 4.8 ms SGD + 1.3 ms DDS per 100 ms "
           "quantum");

    const RunStats before = run(false, 0, false);
    const RunStats after = run(true, 512, true);
    const RunStats traced = run(true, 512, true, true);
    const double speedup = before.meanMs / after.meanMs;
    // min-over-quanta is the least noisy estimator on a loaded
    // machine; the telemetry budget in DESIGN.md §8 is <1%.
    const double telemetry_pct =
        (traced.minMs / after.minMs - 1.0) * 100.0;

    std::printf("%-28s %10s %10s %14s\n", "configuration", "mean ms",
                "min ms", "mean objective");
    std::printf("%-28s %10.3f %10.3f %14.4f\n",
                "before (cold/full/ref)", before.meanMs, before.minMs,
                before.meanObjective);
    std::printf("%-28s %10.3f %10.3f %14.4f\n",
                "after (warm/sub/delta)", after.meanMs, after.minMs,
                after.meanObjective);
    std::printf("%-28s %10.3f %10.3f %14.4f\n",
                "after + trace (no sink)", traced.meanMs, traced.minMs,
                traced.meanObjective);
    std::printf("combined speedup: %.2fx\n", speedup);
    std::printf("telemetry overhead (min ms): %+.2f%%\n",
                telemetry_pct);

    if (FILE *f = std::fopen("BENCH_hotpath.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"quanta\": %zu,\n"
                     "  \"before_mean_ms\": %.4f,\n"
                     "  \"before_min_ms\": %.4f,\n"
                     "  \"before_mean_objective\": %.6f,\n"
                     "  \"after_mean_ms\": %.4f,\n"
                     "  \"after_min_ms\": %.4f,\n"
                     "  \"after_mean_objective\": %.6f,\n"
                     "  \"speedup\": %.4f,\n"
                     "  \"traced_mean_ms\": %.4f,\n"
                     "  \"traced_min_ms\": %.4f,\n"
                     "  \"telemetry_overhead_pct\": %.4f\n"
                     "}\n",
                     kQuanta, before.meanMs, before.minMs,
                     before.meanObjective, after.meanMs, after.minMs,
                     after.meanObjective, speedup, traced.meanMs,
                     traced.minMs, telemetry_pct);
        std::fclose(f);
        std::printf("wrote BENCH_hotpath.json\n");
    }
    return 0;
}
