/**
 * @file
 * Decision-quantum hot-path timing: the combined per-quantum cost of
 * the three matrix reconstructions plus the parallel DDS search,
 * before and after the hot-path optimizations of this change set.
 *
 * "before" reproduces the seed configuration's algorithmic work:
 * cold-start SGD every quantum (no factor reuse), convergence checked
 * on every observed cell, full evaluatePoint per DDS candidate, and
 * the allocating per-call entry points. "after" is the shipped
 * configuration: cross-quantum factor warm starts, subsampled
 * convergence checks, delta-evaluated DDS, and the arena-backed
 * zero-allocation entry points (predictInto + prepared objective +
 * persistent DDS scratch). Both run on the persistent pool.
 *
 * Three extra sections audit this change set directly:
 *  - scalar-vs-vector micro rows time the kernel layer's two
 *    backends on the hot primitive shapes (both are always compiled;
 *    CS_KERNEL_SCALAR only flips the public dispatch),
 *  - a steady-state allocations-per-quantum row, counted by the
 *    cs_alloc_probe operator-new replacement (must be 0),
 *  - a paired telemetry-overhead row: interleaved best-of-K quanta
 *    with and without a trace attached (null sink), and
 *  - --smoke: exit nonzero unless speedup >= 1.5x, the steady-state
 *    allocation count is 0, and telemetry overhead < 1%, for CI.
 *
 * Emits BENCH_hotpath.json next to stdout for scripted comparison.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_common.hh"
#include "cf/engine.hh"
#include "common/alloc_probe.hh"
#include "common/arena.hh"
#include "common/kernels.hh"
#include "common/thread_pool.hh"
#include "search/dds.hh"
#include "telemetry/quantum_trace.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kLiveJobs = 17;
constexpr std::size_t kBatchJobs = 16;
constexpr std::size_t kQuanta = 12;

/** One decision quantum's model work, parameterized by fidelity. */
struct HotPath
{
    CfEngine bips;
    CfEngine power;
    CfEngine latency;
    Matrix predBips, predPower, predLatency;
    Matrix searchBips{kBatchJobs, kNumJobConfigs};
    Matrix searchPower{kBatchJobs, kNumJobConfigs};
    DdsOptions dds;
    Rng rng{83};
    /** true = the shipped arena + prepared-objective path. */
    bool fastPath = false;
    ScratchArena arena;
    ObjectiveContext objCtx;
    PreparedObjective prepared;
    DdsScratch ddsScratch;
    SearchResult found;
    /** Non-null: per-quantum tracing with the sink disabled. */
    telemetry::QuantumTrace *trace = nullptr;

    HotPath(bool warm_start, std::size_t conv_samples, bool delta,
            bool fast_path)
        : bips(trainingTables().bips, kLiveJobs, kNumJobConfigs),
          power(trainingTables().power, kLiveJobs, kNumJobConfigs),
          latency(trainingTables().latency, 1, kNumJobConfigs),
          fastPath(fast_path)
    {
        for (CfEngine *e : {&bips, &power, &latency}) {
            e->setFactorWarmStart(warm_start);
            e->options().convergenceSamples = conv_samples;
        }
        bips.options().threads = 4;
        power.options().threads = 4;
        latency.options().threads = 2;
        latency.options().logTransform = true;
        dds.threads = 8;
        dds.useDeltaEval = delta;

        // Two profiling samples per live row, like the runtime's
        // steady state.
        for (std::size_t j = 0; j < kLiveJobs; ++j) {
            bips.observe(j, 0, rng.uniform(0.5, 8.0));
            bips.observe(j, kNumJobConfigs - 1, rng.uniform(0.5, 8.0));
            power.observe(j, 0, rng.uniform(0.5, 3.0));
            power.observe(j, kNumJobConfigs - 1, rng.uniform(0.5, 3.0));
        }
        latency.observe(0, kNumJobConfigs - 1, 5e-3);
    }

    /** One quantum: ingest a fresh cell, reconstruct x3, search. */
    double quantum(std::size_t slice)
    {
        if (trace) {
            trace->begin(slice, static_cast<double>(slice) * 0.1);
            trace->record().scheduler = "bench-hotpath";
            trace->record().batchPowerBudgetW = 30.0;
            trace->record().cacheBudgetWays = 28.0;
        }
        arena.reset();

        // A trickle of new observations, as the runtime sees.
        const auto cfg = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(
                                  kNumJobConfigs) - 1));
        bips.observe(slice % kLiveJobs, cfg, rng.uniform(0.5, 8.0));
        power.observe(slice % kLiveJobs, cfg, rng.uniform(0.5, 3.0));

        {
            telemetry::PhaseTimer timer(
                trace, telemetry::Phase::Reconstruct);
            ThreadPool::global().parallelFor(3,
                                             [&](std::size_t metric) {
                switch (metric) {
                  case 0:
                    if (fastPath)
                        bips.predictInto(predBips, arena);
                    else
                        bips.predictInto(predBips);
                    break;
                  case 1:
                    if (fastPath)
                        power.predictInto(predPower, arena);
                    else
                        power.predictInto(predPower);
                    break;
                  default:
                    if (fastPath)
                        latency.predictInto(predLatency, arena);
                    else
                        latency.predictInto(predLatency);
                    break;
                }
            });
        }

        kernels::copy(searchBips.data(), predBips.rowPtr(1),
                      kBatchJobs * kNumJobConfigs);
        kernels::copy(searchPower.data(), predPower.rowPtr(1),
                      kBatchJobs * kNumJobConfigs);
        objCtx.bips = &searchBips;
        objCtx.power = &searchPower;
        objCtx.powerBudgetW = 30.0;
        objCtx.cacheBudgetWays = 28.0;
        dds.seed = 11 + slice; // fresh exploration each quantum
        {
            telemetry::PhaseTimer timer(
                trace, telemetry::Phase::Search);
            if (fastPath) {
                prepared.rebuild(objCtx);
                parallelDds(prepared, dds, ddsScratch, found);
            } else {
                found = parallelDds(objCtx, dds);
            }
        }

        if (trace) {
            telemetry::QuantumRecord &rec = trace->record();
            rec.searchEvaluations = found.evaluations;
            rec.searchObjective = found.metrics.objective;
            rec.searchPowerW = found.metrics.powerW;
            rec.searchWays = found.metrics.cacheWays;
            trace->end();
        }
        return found.metrics.objective;
    }
};

struct RunStats
{
    double meanMs = 0.0;
    double minMs = 0.0;
    double meanObjective = 0.0;
};

RunStats
run(bool warm_start, std::size_t conv_samples, bool delta,
    bool fast_path)
{
    HotPath path(warm_start, conv_samples, delta, fast_path);
    // Untimed cold quantum: fills the factor caches for the "after"
    // configuration, and gives both configurations identical warmup.
    path.quantum(0);

    RunStats stats;
    stats.minMs = 1e18;
    for (std::size_t q = 1; q <= kQuanta; ++q) {
        const auto start = Clock::now();
        const double objective = path.quantum(q);
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      start).count();
        stats.meanMs += ms;
        stats.minMs = std::min(stats.minMs, ms);
        stats.meanObjective += objective;
    }
    stats.meanMs /= kQuanta;
    stats.meanObjective /= kQuanta;
    return stats;
}

/** Paired telemetry-overhead measurement (see telemetryOverhead). */
struct TelemetryStats
{
    double bareMinMs = 0.0;   //!< best block avg, trace pointer null
    double tracedMinMs = 0.0; //!< best block avg, trace attached
    double medianDiffUs = 0.0; //!< median per-pair (traced - bare)
    double bestDiffUs = 0.0;   //!< smallest per-pair (traced - bare)
    double overheadPct = 0.0;  //!< best diff / bare min, clamped >= 0
};

/**
 * Cost of compiled-in telemetry (record fill + phase timers, sink
 * stays null), measured as a paired comparison on a single
 * shipped-path instance: each round times one bare and one traced
 * *block* of quanta back to back over the same slice range — same
 * DDS seeds, so both halves run the same search trajectories over
 * near-identical model state — and records the per-quantum traced
 * minus bare difference. Blocks rather than single quanta because a
 * 1.7 ms quantum's wall time on a busy core swings by hundreds of
 * microseconds of timeslice luck; an 8-quantum block averages that
 * down before the subtraction. The order alternates round to round
 * (ABBA), cancelling the second half's warm-cache advantage. Sharing
 * one instance means both sides also see identical buffer addresses
 * and layout; the only systematic difference between the halves is
 * the telemetry itself.
 *
 * The gated estimate is the *best* (smallest) per-round difference
 * over the bare floor — best-of-K on the paired diff, not per side.
 * Preemption noise is one-sided: it can only inflate a round's diff
 * (whichever half it lands on makes that half slower), so the
 * cleanest round approaches the true overhead from above, while a
 * real regression is paid in every round and survives the min. The
 * median diff rides along in the report as a cross-check. Comparing
 * two *independent* run() calls here is hopeless — the overhead is
 * well under the quantum's run-to-run noise, which is how the report
 * once showed telemetry making the loop 2% faster — and even
 * best-of-K per side stays a few percent noisy, because the minima
 * of two heavy-tailed timing distributions converge slowly. The
 * result is clamped at zero: the traced quantum cannot be genuinely
 * faster, so a negative raw diff just means the overhead is below
 * the measurement floor.
 */
TelemetryStats
telemetryOverhead()
{
    HotPath path(true, 512, true, true);
    telemetry::QuantumTrace trace;

    for (std::size_t q = 0; q < 4; ++q)
        path.quantum(q);

    constexpr std::size_t kBlock = 8;   //!< quanta per timed block
    constexpr std::size_t kRounds = 12; //!< paired blocks
    TelemetryStats stats;
    stats.bareMinMs = 1e18;
    stats.tracedMinMs = 1e18;
    std::vector<double> diffsUs;
    diffsUs.reserve(kRounds);
    std::size_t slice = 4;
    for (std::size_t r = 0; r < kRounds; ++r) {
        const bool traced_first = (r % 2 == 1);
        double bare_ms = 0.0, traced_ms = 0.0;
        for (int half = 0; half < 2; ++half) {
            const bool with_trace = (half == 0) == traced_first;
            path.trace = with_trace ? &trace : nullptr;
            const auto start = Clock::now();
            for (std::size_t b = 0; b < kBlock; ++b)
                path.quantum(slice + b);
            const double ms =
                std::chrono::duration<double, std::milli>(
                    Clock::now() - start).count() /
                static_cast<double>(kBlock);
            (with_trace ? traced_ms : bare_ms) = ms;
        }
        slice += kBlock;
        stats.bareMinMs = std::min(stats.bareMinMs, bare_ms);
        stats.tracedMinMs = std::min(stats.tracedMinMs, traced_ms);
        diffsUs.push_back((traced_ms - bare_ms) * 1e3);
    }
    path.trace = nullptr;
    stats.bestDiffUs =
        *std::min_element(diffsUs.begin(), diffsUs.end());
    std::nth_element(diffsUs.begin(),
                     diffsUs.begin() + kRounds / 2, diffsUs.end());
    stats.medianDiffUs = diffsUs[kRounds / 2];
    stats.overheadPct = std::max(
        0.0, stats.bestDiffUs / (stats.bareMinMs * 1e3) * 100.0);
    return stats;
}

/**
 * Steady-state allocations per quantum on the shipped path, counted
 * by the cs_alloc_probe global operator-new replacement. The warmup
 * quanta grow every buffer to its high-water mark; after that the
 * decision loop must not touch the heap at all.
 */
std::uint64_t
steadyStateAllocs()
{
    HotPath path(true, 512, true, true);
    // Warm up: slab growth, factor caches, pool batch freelist, DDS
    // scratch. A few quanta so every code path (fallback candidate,
    // adoption) has run at least once.
    for (std::size_t q = 0; q < 4; ++q)
        path.quantum(q);

    constexpr std::size_t kSteady = 8;
    const std::uint64_t before = AllocProbe::newCount();
    for (std::size_t q = 4; q < 4 + kSteady; ++q)
        path.quantum(q);
    const std::uint64_t after = AllocProbe::newCount();
    return (after - before) / kSteady;
}

/** One scalar-vs-vector kernel micro row. */
struct MicroRow
{
    const char *name;
    double scalarNs = 0.0;
    double vectorNs = 0.0;
    double ratio = 0.0;
};

template <typename F>
double
timeNs(F &&body, std::size_t reps)
{
    // One untimed rep warms the caches.
    body();
    const auto start = Clock::now();
    for (std::size_t i = 0; i < reps; ++i) {
        body();
        // Compiler barrier: without it the optimizer proves the pure
        // kernel call loop-invariant and hoists it, timing nothing.
        asm volatile("" ::: "memory");
    }
    return std::chrono::duration<double, std::nano>(Clock::now() -
                                                    start).count() /
           static_cast<double>(reps);
}

/**
 * Time both kernel backends on the hot shapes: rank-8 SGD steps,
 * jobs x configs log-table fills, and 16-wide gathers. Both backends
 * are compiled into every build (the CS_KERNEL_SCALAR option only
 * flips the public dispatch), so the rows are meaningful everywhere.
 */
std::vector<MicroRow>
microKernels()
{
    constexpr std::size_t kRank = kernels::padded(8);
    constexpr std::size_t kCells = 17 * kNumJobConfigs;
    constexpr std::size_t kReps = 20'000;
    Rng rng(29);

    std::vector<double> a(kCells), b(kCells), table(kCells);
    for (std::size_t i = 0; i < kCells; ++i) {
        a[i] = rng.uniform(0.1, 4.0);
        b[i] = rng.uniform(0.1, 4.0);
    }
    std::vector<std::uint16_t> idx(kBatchJobs);
    for (auto &v : idx) {
        v = static_cast<std::uint16_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(kNumJobConfigs) - 1));
    }
    double sink = 0.0;

    std::vector<MicroRow> rows;
    {
        MicroRow row{"dot rank-8"};
        row.scalarNs = timeNs([&] {
            sink += kernels::detail::dotScalar(a.data(), b.data(),
                                               kRank);
        }, kReps);
        row.vectorNs = timeNs([&] {
            sink += kernels::detail::dotVec(a.data(), b.data(), kRank);
        }, kReps);
        rows.push_back(row);
    }
    {
        MicroRow row{"sgd rank step"};
        row.scalarNs = timeNs([&] {
            kernels::detail::sgdRankStepScalar(a.data(), b.data(),
                                               kRank, 1e-4, 1e-4, 0.1);
        }, kReps);
        row.vectorNs = timeNs([&] {
            kernels::detail::sgdRankStepVec(a.data(), b.data(), kRank,
                                            1e-4, 1e-4, 0.1);
        }, kReps);
        rows.push_back(row);
    }
    {
        MicroRow row{"logFill 17x108"};
        row.scalarNs = timeNs([&] {
            sink += kernels::detail::logFillScalar(table.data(),
                                                   a.data(), kCells,
                                                   1e-6);
        }, 200);
        row.vectorNs = timeNs([&] {
            sink += kernels::detail::logFillVec(table.data(), a.data(),
                                                kCells, 1e-6);
        }, 200);
        rows.push_back(row);
    }
    {
        MicroRow row{"gatherSum 16 jobs"};
        row.scalarNs = timeNs([&] {
            sink += kernels::detail::gatherSumScalar(
                table.data(), kNumJobConfigs, idx.data(), kBatchJobs);
        }, kReps);
        row.vectorNs = timeNs([&] {
            sink += kernels::detail::gatherSumVec(
                table.data(), kNumJobConfigs, idx.data(), kBatchJobs);
        }, kReps);
        rows.push_back(row);
    }
    for (MicroRow &row : rows)
        row.ratio = row.scalarNs / row.vectorNs;
    // Keep the side effects alive without printing garbage.
    if (sink == 42.424242)
        std::printf("\n");
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    setInformEnabled(false);
    banner("bench_hotpath", "decision-quantum hot path before/after",
           "Table II budget: 4.8 ms SGD + 1.3 ms DDS per 100 ms "
           "quantum");

    const RunStats before = run(false, 0, false, false);
    const RunStats after = run(true, 512, true, true);
    const TelemetryStats telem = telemetryOverhead();
    const double speedup = before.meanMs / after.meanMs;
    const double speedup_min = before.minMs / after.minMs;
    const std::uint64_t allocs = steadyStateAllocs();
    const std::vector<MicroRow> micro = microKernels();

    std::printf("%-28s %10s %10s %14s\n", "configuration", "mean ms",
                "min ms", "mean objective");
    std::printf("%-28s %10.3f %10.3f %14.4f\n",
                "before (cold/full/ref)", before.meanMs, before.minMs,
                before.meanObjective);
    std::printf("%-28s %10.3f %10.3f %14.4f\n",
                "after (warm/delta/arena)", after.meanMs, after.minMs,
                after.meanObjective);
    std::printf("combined speedup: %.2fx (min-ms %.2fx)\n", speedup,
                speedup_min);
    std::printf("telemetry overhead (paired diff best %+.1f / median "
                "%+.1f us over %.3f ms floor): %.2f%%\n",
                telem.bestDiffUs, telem.medianDiffUs, telem.bareMinMs,
                telem.overheadPct);
    std::printf("steady-state allocations/quantum: %llu\n",
                static_cast<unsigned long long>(allocs));

    std::printf("\n%-28s %10s %10s %8s  (backend: %s)\n", "kernel",
                "scalar ns", "vector ns", "ratio",
                kernels::backendName());
    for (const MicroRow &row : micro) {
        std::printf("%-28s %10.2f %10.2f %7.2fx\n", row.name,
                    row.scalarNs, row.vectorNs, row.ratio);
    }

    if (FILE *f = std::fopen("BENCH_hotpath.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"quanta\": %zu,\n"
                     "  \"before_mean_ms\": %.4f,\n"
                     "  \"before_min_ms\": %.4f,\n"
                     "  \"before_mean_objective\": %.6f,\n"
                     "  \"after_mean_ms\": %.4f,\n"
                     "  \"after_min_ms\": %.4f,\n"
                     "  \"after_mean_objective\": %.6f,\n"
                     "  \"speedup\": %.4f,\n"
                     "  \"speedup_min_ms\": %.4f,\n"
                     "  \"telemetry_bare_min_ms\": %.4f,\n"
                     "  \"telemetry_traced_min_ms\": %.4f,\n"
                     "  \"telemetry_best_paired_diff_us\": %.3f,\n"
                     "  \"telemetry_median_paired_diff_us\": %.3f,\n"
                     "  \"telemetry_overhead_pct\": %.4f,\n"
                     "  \"steady_state_allocs_per_quantum\": %llu,\n"
                     "  \"kernel_backend\": \"%s\",\n"
                     "  \"micro_kernels\": [\n",
                     kQuanta, before.meanMs, before.minMs,
                     before.meanObjective, after.meanMs, after.minMs,
                     after.meanObjective, speedup, speedup_min,
                     telem.bareMinMs, telem.tracedMinMs,
                     telem.bestDiffUs, telem.medianDiffUs,
                     telem.overheadPct,
                     static_cast<unsigned long long>(allocs),
                     kernels::backendName());
        for (std::size_t i = 0; i < micro.size(); ++i) {
            std::fprintf(f,
                         "    {\"name\": \"%s\", \"scalar_ns\": %.2f, "
                         "\"vector_ns\": %.2f, \"ratio\": %.3f}%s\n",
                         micro[i].name, micro[i].scalarNs,
                         micro[i].vectorNs, micro[i].ratio,
                         i + 1 < micro.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote BENCH_hotpath.json\n");
    }

    if (smoke) {
        bool ok = true;
        if (speedup_min < 1.5) {
            std::printf("SMOKE FAIL: min-ms speedup %.2fx < 1.5x\n",
                        speedup_min);
            ok = false;
        }
        if (allocs != 0) {
            std::printf("SMOKE FAIL: %llu steady-state allocations "
                        "per quantum (expected 0)\n",
                        static_cast<unsigned long long>(allocs));
            ok = false;
        }
        // DESIGN.md §8 budgets compiled-in telemetry at under 1% of
        // the decision quantum.
        if (telem.overheadPct >= 1.0) {
            std::printf("SMOKE FAIL: telemetry overhead %.2f%% >= "
                        "1%%\n", telem.overheadPct);
            ok = false;
        }
        if (ok)
            std::printf("SMOKE PASS\n");
        return ok ? 0 : 1;
    }
    return 0;
}
