/**
 * @file
 * Ablation D5: profiling-sample placement. The paper profiles each
 * job on the widest and narrowest configurations; this bench compares
 * that pair against random pairs and adjacent (uninformative) pairs.
 */

#include "bench_common.hh"
#include "cf/engine.hh"
#include "common/stats.hh"
#include "sim/ground_truth.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

double
medianError(const BatchTruth &truth, std::size_t app,
            std::size_t sample_a, std::size_t sample_b)
{
    CfEngine engine(trainingTables().bips, 1, kNumJobConfigs);
    engine.observe(0, sample_a, truth.bips(app, sample_a));
    engine.observe(0, sample_b, truth.bips(app, sample_b));
    const Matrix pred = engine.predict();
    std::vector<double> errors;
    for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
        if (c == sample_a || c == sample_b)
            continue;
        errors.push_back(std::abs(
            relativeErrorPct(pred(0, c), truth.bips(app, c))));
    }
    return percentile(errors, 50.0);
}

} // namespace

int
main()
{
    setInformEnabled(false);
    banner("abl_samples", "D5: profiling-sample placement",
           "paper samples the widest ({6,6,6}) and narrowest "
           "({2,2,2}) configurations");

    const auto &split = specSplit();
    const BatchTruth truth = batchTruthTables(split.test, params());
    const std::size_t wide = JobConfig(CoreConfig::widest(), 1).index();
    const std::size_t narrow =
        JobConfig(CoreConfig::narrowest(), 1).index();

    double extremes = 0.0, random_pair = 0.0, adjacent = 0.0;
    Rng rng(9090);
    for (std::size_t a = 0; a < split.test.size(); ++a) {
        extremes += medianError(truth, a, wide, narrow);

        const auto r1 = static_cast<std::size_t>(
            rng.uniformInt(0, kNumJobConfigs - 1));
        std::size_t r2 = r1;
        while (r2 == r1) {
            r2 = static_cast<std::size_t>(
                rng.uniformInt(0, kNumJobConfigs - 1));
        }
        random_pair += medianError(truth, a, r1, r2);

        // Two adjacent mid-range configurations (least informative).
        const std::size_t mid = kNumJobConfigs / 2;
        adjacent += medianError(truth, a, mid, mid + 1);
    }
    const double n = static_cast<double>(split.test.size());

    std::printf("%-28s %14s\n", "sample placement",
                "median |error|");
    std::printf("%-28s %13.1f%%\n", "widest + narrowest (paper)",
                extremes / n);
    std::printf("%-28s %13.1f%%\n", "random pair", random_pair / n);
    std::printf("%-28s %13.1f%%\n", "adjacent mid-range pair",
                adjacent / n);
    std::printf("\nextreme pair is best: %s\n",
                extremes <= random_pair && extremes <= adjacent
                    ? "yes" : "NO");
    return 0;
}
