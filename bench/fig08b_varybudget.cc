/**
 * @file
 * Fig 8b: CuttleSys under a varying power budget (90% -> 60% -> 90%)
 * at a constant 80% load. The LC service keeps the power it needs for
 * QoS; the batch configurations absorb the budget swing.
 */

#include "bench_common.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("fig08b_varybudget",
           "power budget 90% -> 60% -> 90% at constant 80% load",
           "LC config and power stay ~constant; batch cores downsize "
           "under the tight budget and recover after");

    const WorkloadMix &mix = evaluationMixes()[0];
    MulticoreSim sim(params(), mix, 701);
    auto sched = makeCuttleSys(mix);

    DriverOptions opts = driverOptions(0.9, 0.8, 2.0);
    opts.powerPattern =
        LoadPattern::steps({{0.0, 0.9}, {0.6, 0.6}, {1.4, 0.9}});
    const RunResult r = runColocation(sim, *sched, opts);

    std::printf("%6s %8s %9s %8s %8s %8s %10s\n", "t(s)", "budget",
                "P(W)", "p99/QoS", "gmean", "lcP(W)", "lcConfig");
    for (const auto &s : r.slices) {
        std::printf("%6.1f %8.1f %9.1f %8.2f %8.2f %8.1f %10s\n",
                    s.measurement.timeSec, s.powerBudgetW,
                    s.measurement.totalPower,
                    s.measurement.lcTailLatency /
                        mix.lc.qosSeconds(),
                    gmeanBatchBips(s.measurement),
                    s.measurement.lcPower,
                    s.decision.lcConfig.toString().c_str());
    }

    // Shape checks: batch throughput must drop during the 60% window
    // and recover after; QoS must hold throughout.
    double gm_tight = 0.0, gm_loose = 0.0;
    std::size_t n_tight = 0, n_loose = 0;
    for (const auto &s : r.slices) {
        if (s.measurement.timeSec < 0.2)
            continue; // warm-up
        if (s.powerBudgetW < 0.75 * maxPowerW()) {
            gm_tight += gmeanBatchBips(s.measurement);
            ++n_tight;
        } else {
            gm_loose += gmeanBatchBips(s.measurement);
            ++n_loose;
        }
    }
    gm_tight /= std::max<std::size_t>(n_tight, 1);
    gm_loose /= std::max<std::size_t>(n_loose, 1);
    std::printf("\nmean batch gmean at 90%% budget: %.2f, at 60%%: "
                "%.2f (must drop under the tight budget)\n",
                gm_loose, gm_tight);
    std::printf("QoS violations: %zu (paper: none)\n",
                r.qosViolations);
    return 0;
}
