/**
 * @file
 * Ablation D6: victim-selection order for core-level gating. The
 * paper evaluated descending power, ascending power, ascending
 * BIPS/W and ascending BIPS, and found descending power best — this
 * bench reruns that comparison on our substrate.
 */

#include "baselines/core_gating.hh"
#include "bench_common.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("abl_gating_policy", "D6: core-gating victim order",
           "paper: descending power performs best of the four orders");

    const GatingPolicy policies[] = {
        GatingPolicy::DescendingPower, GatingPolicy::AscendingPower,
        GatingPolicy::AscendingBipsPerWatt,
        GatingPolicy::AscendingBips};

    std::printf("%-16s", "policy \\ cap");
    const std::vector<double> caps = {0.7, 0.6, 0.5};
    for (double cap : caps)
        std::printf(" %9.0f%%", cap * 100.0);
    std::printf("\n");

    std::vector<double> desc_power_totals(caps.size(), 0.0);
    for (const auto policy : policies) {
        std::printf("%-16s", gatingPolicyName(policy));
        for (std::size_t ci = 0; ci < caps.size(); ++ci) {
            double total = 0.0;
            for (std::size_t lc = 0; lc < lcApps().size(); ++lc) {
                const WorkloadMix &mix = evaluationMixes()[lc * 10];
                MulticoreSim sim(params(), mix, 9100 + lc);
                CoreGatingScheduler sched(params(), mix, false,
                                          policy);
                total += runColocation(sim, sched,
                                       driverOptions(caps[ci], 0.8))
                             .totalBatchInstructions;
            }
            if (policy == GatingPolicy::DescendingPower)
                desc_power_totals[ci] = total;
            std::printf(" %9.2e", total);
        }
        std::printf("\n");
    }
    std::printf("\n(values are batch instructions summed over the 5 "
                "services' first mixes)\n");
    return 0;
}
