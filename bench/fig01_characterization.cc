/**
 * @file
 * Fig 1: tail latency and power of the five latency-critical services
 * across all 27 core configurations, at 20% and 80% load, on the
 * 16-core homogeneous reference system.
 *
 * Prints, per service: the 27 configurations sorted by tail latency
 * at 80% load (the paper's x-axis ordering), with p99 and per-chip
 * power at both loads, then checks the paper's qualitative findings
 * (which section dominates each service, least-power viable config).
 */

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bench_common.hh"
#include "lcsim/queue_sim.hh"
#include "model/core_model.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

struct ConfigPoint
{
    CoreConfig config;
    double tailLo = 0.0;  //!< p99 at 20% load, s
    double tailHi = 0.0;  //!< p99 at 80% load, s
    double powerLo = 0.0; //!< 16-core power at 20% load, W
    double powerHi = 0.0; //!< 16-core power at 80% load, W
};

/** Measure one service across all 27 core configs (4 LLC ways). */
std::vector<ConfigPoint>
characterize(const AppProfile &app)
{
    std::vector<ConfigPoint> points;
    points.reserve(kNumCoreConfigs);
    constexpr std::size_t servers = 16;

    for (std::size_t k = 0; k < kNumCoreConfigs; ++k) {
        ConfigPoint point;
        point.config = CoreConfig::fromIndex(k);
        const JobConfig joint(point.config, kNumCacheAllocs - 1);
        const double ips = coreIps(app, joint, params());
        const double ipc = coreIpc(app, joint, params());

        for (const double fraction : {0.2, 0.8}) {
            LcQueueSim sim(app, servers, ips, 1000 + k);
            sim.setLoadQps(fraction * app.maxQps);
            sim.run(0.4);
            sim.clearWindow();
            sim.run(1.2);
            const double tail = sim.completedInWindow() > 0
                ? sim.tailLatency(99.0) : 1.6;
            const double util = sim.utilization();
            const double chip_power =
                corePower(app, point.config, ipc * util, params()) *
                static_cast<double>(servers);
            if (fraction < 0.5) {
                point.tailLo = tail;
                point.powerLo = chip_power;
            } else {
                point.tailHi = tail;
                point.powerHi = chip_power;
            }
        }
        points.push_back(point);
    }

    std::sort(points.begin(), points.end(),
              [](const ConfigPoint &a, const ConfigPoint &b) {
                  return a.tailHi < b.tailHi;
              });
    return points;
}

/** Least-power config meeting QoS at 80% load. */
const ConfigPoint *
leastPowerViable(const std::vector<ConfigPoint> &points,
                 const AppProfile &app)
{
    const ConfigPoint *best = nullptr;
    for (const auto &p : points) {
        if (p.tailHi > app.qosSeconds())
            continue;
        if (!best || p.powerHi < best->powerHi)
            best = &p;
    }
    return best;
}

/**
 * Mean tail-latency degradation (80% load) when a section is dropped
 * to 2-wide, relative to keeping it 6-wide, averaged over the other
 * sections' settings — identifies the dominant section.
 */
double
sectionImpact(const std::vector<ConfigPoint> &points, Section s)
{
    double narrow_sum = 0.0, wide_sum = 0.0;
    std::size_t narrow_n = 0, wide_n = 0;
    for (const auto &p : points) {
        if (p.config.width(s) == 2) {
            narrow_sum += std::log(std::max(p.tailHi, 1e-6));
            ++narrow_n;
        } else if (p.config.width(s) == 6) {
            wide_sum += std::log(std::max(p.tailHi, 1e-6));
            ++wide_n;
        }
    }
    return std::exp(narrow_sum / narrow_n - wide_sum / wide_n);
}

} // namespace

int
main()
{
    setInformEnabled(false);
    banner("fig01_characterization",
           "tail latency & power across 27 core configs, 20%/80% load",
           "xapian LS-bound; imgdnn/silo/masstree need FE,LS >= 4; "
           "moses FE-bound; least-power viable: xapian {2,2,6}, "
           "imgdnn {4,2,4}, masstree {4,2,4}, moses {6,2,4}, "
           "silo {2,2,4}");

    for (const auto &app : lcApps()) {
        const auto points = characterize(app);
        std::printf("\n--- %s (QoS %.1f ms, maxQPS %.0f) ---\n",
                    app.name.c_str(), app.qosMs, app.maxQps);
        std::printf("%-9s %12s %12s %11s %11s\n", "config",
                    "p99@20%(ms)", "p99@80%(ms)", "P@20%(W)",
                    "P@80%(W)");
        for (const auto &p : points) {
            std::printf("%-9s %12.2f %12.2f %11.1f %11.1f\n",
                        p.config.toString().c_str(), p.tailLo * 1e3,
                        p.tailHi * 1e3, p.powerLo, p.powerHi);
        }

        const double fe = sectionImpact(points, Section::FrontEnd);
        const double be = sectionImpact(points, Section::BackEnd);
        const double ls = sectionImpact(points, Section::LoadStore);
        std::printf("tail blow-up from narrowing a section to 2-wide "
                    "(geo-mean): FE %.2fx  BE %.2fx  LS %.2fx\n",
                    fe, be, ls);
        if (const ConfigPoint *best = leastPowerViable(points, app)) {
            std::printf("least-power config meeting QoS at 80%%: "
                        "%s (%.1f W)\n",
                        best->config.toString().c_str(),
                        best->powerHi);
        }

        // Low-load observation (Section III): even weak configs stay
        // usable at 20% load.
        std::size_t viable_lo = 0;
        for (const auto &p : points)
            viable_lo += p.tailLo <= app.qosSeconds() ? 1 : 0;
        std::printf("configs meeting QoS at 20%% load: %zu/27\n",
                    viable_lo);
    }
    return 0;
}
