/**
 * @file
 * Fig 10b: end-to-end throughput of SGD-DDS vs SGD-GA across power
 * caps — the same CuttleSys runtime with only the design-space
 * exploration algorithm swapped (both get the same warm starts and a
 * comparable evaluation budget). The paper reports up to 19% higher
 * throughput for DDS, with the gap widest at relaxed caps.
 */

#include "bench_common.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("fig10b_dds_vs_ga_caps",
           "relative throughput, SGD-DDS vs SGD-GA, across caps",
           "DDS up to +19%, gap larger at relaxed caps where more of "
           "the space is feasible");

    const std::vector<double> caps = {0.9, 0.8, 0.7, 0.6, 0.5};

    auto sweep = [&](SearchAlgo algo, bool warm) {
        std::vector<double> instr(caps.size(), 0.0);
        for (std::size_t lc = 0; lc < lcApps().size(); ++lc) {
            for (std::size_t m = 0; m < mixesPerLc(); ++m) {
                const WorkloadMix &mix =
                    evaluationMixes()[lc * 10 + m];
                for (std::size_t ci = 0; ci < caps.size(); ++ci) {
                    MulticoreSim sim(params(), mix,
                                     8000 + lc * 100 + m);
                    CuttleSysOptions copts;
                    copts.searchAlgo = algo;
                    copts.searchWarmStart = warm;
                    auto sched = makeCuttleSys(mix, copts);
                    instr[ci] += runColocation(
                                     sim, *sched,
                                     driverOptions(caps[ci], 0.8))
                                     .totalBatchInstructions;
                }
            }
        }
        return instr;
    };

    // The paper's setting: raw optimizers, no warm starts.
    const auto dds_raw = sweep(SearchAlgo::ParallelDds, false);
    const auto ga_raw = sweep(SearchAlgo::Ga, false);
    // Our runtime's setting: both get the same warm starts.
    const auto dds_warm = sweep(SearchAlgo::ParallelDds, true);
    const auto ga_warm = sweep(SearchAlgo::Ga, true);

    std::printf("%-22s", "cap");
    for (double cap : caps)
        std::printf(" %7.0f%%", cap * 100.0);
    auto row = [&](const char *name, const std::vector<double> &num,
                   const std::vector<double> &den) {
        std::printf("\n%-22s", name);
        for (std::size_t ci = 0; ci < caps.size(); ++ci)
            std::printf(" %8.3f", num[ci] / den[ci]);
    };
    row("SGD-GA / SGD-DDS raw", ga_raw, dds_raw);
    row("SGD-GA / SGD-DDS warm", ga_warm, dds_warm);

    std::printf("\n\nraw DDS advantage per cap (paper's Fig 10b):");
    double max_gain = 0.0;
    for (std::size_t ci = 0; ci < caps.size(); ++ci) {
        const double gain = dds_raw[ci] / ga_raw[ci] - 1.0;
        max_gain = std::max(max_gain, gain);
        std::printf(" %+5.1f%%", gain * 100.0);
    }
    std::printf("  (max %+.1f%%; paper up to +19%%)\n",
                max_gain * 100.0);
    std::printf("(with shared warm starts both optimizers converge "
                "to comparable points)\n");
    return 0;
}
