/**
 * @file
 * Fig 5c: batch instructions executed under power caps 90%..50%, for
 * core-level gating (with and without way-partitioning), the
 * oracle-like asymmetric multicore, the static 50/50 asymmetric
 * multicore, and CuttleSys — all relative to no-gating (all cores
 * wide, budget ignored). QoS violations are counted per scheme.
 */

#include "baselines/asymmetric.hh"
#include "baselines/core_gating.hh"
#include "baselines/no_gating.hh"
#include "bench_common.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

struct SchemeOutcome
{
    double instructions = 0.0;
    std::size_t qosViolations = 0;
};

/** Run one scheme on one colocation at one cap. */
template <typename MakeScheduler>
SchemeOutcome
runScheme(const WorkloadMix &mix, double cap, MakeScheduler make,
          std::uint64_t seed)
{
    MulticoreSim sim(params(), mix, seed);
    auto scheduler = make(sim);
    const RunResult r =
        runColocation(sim, *scheduler, driverOptions(cap, 0.8));
    SchemeOutcome out;
    out.instructions = r.totalBatchInstructions;
    for (std::size_t s = 3; s < r.slices.size(); ++s)
        out.qosViolations += r.slices[s].qosViolated ? 1 : 0;
    return out;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    banner("fig05c_powercaps",
           "relative batch instructions vs power cap",
           "CuttleSys loses at 90% (reconfig overheads), then beats "
           "gating by 1.64x avg / 2.65x max, gating+wp by 1.52x avg "
           "/ 2.46x max, the asymm oracle by 1.19x avg / 1.55x max; "
           "QoS always met");

    const std::vector<double> caps = {0.9, 0.8, 0.7, 0.6, 0.5};
    const char *schemes[] = {"no-gating", "core-gating",
                             "core-gating+wp", "asymm-oracle",
                             "asymm-50/50", "CuttleSys"};
    constexpr std::size_t kNumSchemes = 6;

    // instructions[scheme][cap], aggregated over mixes.
    std::vector<std::vector<double>> instr(
        kNumSchemes, std::vector<double>(caps.size(), 0.0));
    std::vector<std::size_t> violations(kNumSchemes, 0);

    std::size_t runs = 0;
    for (std::size_t lc = 0; lc < lcApps().size(); ++lc) {
        for (std::size_t m = 0; m < mixesPerLc(); ++m) {
            const WorkloadMix &mix = evaluationMixes()[lc * 10 + m];
            for (std::size_t ci = 0; ci < caps.size(); ++ci) {
                const double cap = caps[ci];
                const std::uint64_t seed = 5000 + lc * 100 + m;

                const auto schemes_run = std::array{
                    runScheme(mix, cap,
                              [&](MulticoreSim &sim)
                                  -> std::unique_ptr<Scheduler> {
                                  (void)sim;
                                  return std::make_unique<
                                      NoGatingScheduler>(
                                      mix.batch.size());
                              },
                              seed),
                    runScheme(mix, cap,
                              [&](MulticoreSim &sim)
                                  -> std::unique_ptr<Scheduler> {
                                  (void)sim;
                                  return std::make_unique<
                                      CoreGatingScheduler>(params(),
                                                           mix,
                                                           false);
                              },
                              seed),
                    runScheme(mix, cap,
                              [&](MulticoreSim &sim)
                                  -> std::unique_ptr<Scheduler> {
                                  (void)sim;
                                  return std::make_unique<
                                      CoreGatingScheduler>(params(),
                                                           mix,
                                                           true);
                              },
                              seed),
                    runScheme(mix, cap,
                              [&](MulticoreSim &sim)
                                  -> std::unique_ptr<Scheduler> {
                                  return std::make_unique<
                                      AsymmetricOracleScheduler>(sim);
                              },
                              seed),
                    runScheme(mix, cap,
                              [&](MulticoreSim &sim)
                                  -> std::unique_ptr<Scheduler> {
                                  return std::make_unique<
                                      StaticAsymmetricScheduler>(sim);
                              },
                              seed),
                    runScheme(mix, cap,
                              [&](MulticoreSim &sim)
                                  -> std::unique_ptr<Scheduler> {
                                  (void)sim;
                                  return makeCuttleSys(mix);
                              },
                              seed),
                };
                for (std::size_t s = 0; s < kNumSchemes; ++s) {
                    instr[s][ci] += schemes_run[s].instructions;
                    violations[s] += schemes_run[s].qosViolations;
                }
            }
            ++runs;
        }
    }

    std::printf("%-16s", "scheme \\ cap");
    for (double cap : caps)
        std::printf(" %7.0f%%", cap * 100.0);
    std::printf("   QoS viol\n");
    for (std::size_t s = 0; s < kNumSchemes; ++s) {
        std::printf("%-16s", schemes[s]);
        for (std::size_t ci = 0; ci < caps.size(); ++ci)
            std::printf(" %8.2f", instr[s][ci] / instr[0][ci]);
        std::printf("   %zu\n", violations[s]);
    }

    std::printf("\nCuttleSys vs core-gating ratio per cap:");
    double best_ratio = 0.0;
    for (std::size_t ci = 0; ci < caps.size(); ++ci) {
        const double ratio = instr[5][ci] / instr[1][ci];
        best_ratio = std::max(best_ratio, ratio);
        std::printf(" %.2fx", ratio);
    }
    std::printf("  (max %.2fx; paper up to 2.65x)\n", best_ratio);

    std::printf("CuttleSys vs gating+wp ratio per cap:   ");
    for (std::size_t ci = 0; ci < caps.size(); ++ci)
        std::printf(" %.2fx", instr[5][ci] / instr[2][ci]);
    std::printf("\n");
    std::printf("CuttleSys vs asymm-oracle ratio per cap:");
    for (std::size_t ci = 0; ci < caps.size(); ++ci)
        std::printf(" %.2fx", instr[5][ci] / instr[3][ci]);
    std::printf("\n");
    std::printf("CuttleSys vs asymm-50/50 ratio per cap: ");
    for (std::size_t ci = 0; ci < caps.size(); ++ci)
        std::printf(" %.2fx", instr[5][ci] / instr[4][ci]);
    std::printf("  (paper: 1.70/1.65/1.50x at 90/80/70%%)\n");
    std::printf("\n(%zu mixes x %zu caps per scheme, %.1fs "
                "simulated each)\n",
                runs, caps.size(), runDuration());
    return 0;
}
