/**
 * @file
 * Ablation D3: parallel-DDS parameters — the multi-radius thread
 * groups of Algorithm 2 versus a single perturbation radius, the
 * iteration budget, and the warm-start seeds.
 */

#include "bench_common.hh"
#include "search/dds.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

/** A decision-quantum-shaped landscape. */
struct Landscape
{
    Matrix bips{16, kNumJobConfigs};
    Matrix power{16, kNumJobConfigs};
    ObjectiveContext ctx;

    explicit Landscape(double budget)
    {
        for (std::size_t j = 0; j < 16; ++j) {
            const std::size_t src = j % trainingTables().bips.rows();
            for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
                bips(j, c) = trainingTables().bips(src, c);
                power(j, c) = trainingTables().power(src, c);
            }
        }
        ctx.bips = &bips;
        ctx.power = &power;
        ctx.powerBudgetW = budget;
        ctx.cacheBudgetWays = 28.0;
    }
};

double
meanObjective(const DdsOptions &base, const Landscape &land,
              std::size_t trials)
{
    double sum = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
        DdsOptions options = base;
        options.seed = 100 + t;
        sum += parallelDds(land.ctx, options).metrics.objective;
    }
    return sum / static_cast<double>(trials);
}

} // namespace

int
main()
{
    setInformEnabled(false);
    banner("abl_dds_params", "D3: parallel DDS parameter ablation",
           "paper: r = {0.2,0.3,0.4,0.5} thread groups, 40 "
           "iterations, 10 points/iteration, 50 initial points");

    constexpr std::size_t kTrials = 5;
    for (double budget : {45.0, 30.0, 20.0}) {
        const Landscape land(budget);
        std::printf("\nbatch power budget %.0f W (mean objective "
                    "over %zu seeds):\n", budget, kTrials);

        DdsOptions paper;
        std::printf("  %-34s %.4f\n", "paper parameters (multi-r)",
                    meanObjective(paper, land, kTrials));

        DdsOptions single_r = paper;
        single_r.rValues = {0.2};
        std::printf("  %-34s %.4f\n", "single radius r=0.2",
                    meanObjective(single_r, land, kTrials));
        single_r.rValues = {0.5};
        std::printf("  %-34s %.4f\n", "single radius r=0.5",
                    meanObjective(single_r, land, kTrials));

        DdsOptions few_iters = paper;
        few_iters.maxIterations = 10;
        std::printf("  %-34s %.4f\n", "10 iterations",
                    meanObjective(few_iters, land, kTrials));
        DdsOptions many_iters = paper;
        many_iters.maxIterations = 160;
        std::printf("  %-34s %.4f\n", "160 iterations",
                    meanObjective(many_iters, land, kTrials));

        DdsOptions few_points = paper;
        few_points.pointsPerIteration = 2;
        std::printf("  %-34s %.4f\n", "2 points/iteration",
                    meanObjective(few_points, land, kTrials));
    }
    return 0;
}
