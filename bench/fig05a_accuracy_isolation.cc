/**
 * @file
 * Fig 5a: SGD reconstruction error in isolation.
 *
 * Every test application runs alone for full timeslices (no
 * interference, no sampling noise): the 12 held-out SPEC apps
 * contribute two exact samples each (widest/narrowest, 1 way) for the
 * throughput and power matrices; each TailBench service at 80% load
 * contributes one measured tail-latency entry. The remaining
 * configurations are reconstructed and compared against ground truth;
 * the box plots of signed relative error correspond to Fig 5a.
 */

#include "bench_common.hh"
#include "cf/engine.hh"
#include "core/training.hh"
#include "common/stats.hh"
#include "model/core_model.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

std::size_t
oneWayRank()
{
    for (std::size_t i = 0; i < kNumCacheAllocs; ++i) {
        if (kCacheAllocWays[i] == 1.0)
            return i;
    }
    return 1;
}

void
printBox(const char *metric, const std::vector<double> &errors)
{
    const BoxPlot box = boxPlot(errors);
    std::printf("%-12s p5=%7.1f%%  q1=%6.1f%%  med=%6.1f%%  "
                "q3=%6.1f%%  p95=%6.1f%%  outliers=%zu\n",
                metric, box.p5, box.q1, box.median, box.q3, box.p95,
                box.outliers.size());
}

} // namespace

int
main()
{
    setInformEnabled(false);
    banner("fig05a_accuracy_isolation",
           "SGD prediction error, apps in isolation (box plots)",
           "25th/75th percentiles within 10%; 5th/95th within 20% "
           "for throughput, tail latency and power");

    const std::size_t wide_idx =
        JobConfig(CoreConfig::widest(), oneWayRank()).index();
    const std::size_t narrow_idx =
        JobConfig(CoreConfig::narrowest(), oneWayRank()).index();

    // --- throughput & power: 12 held-out SPEC apps -------------------
    const auto &test_apps = specSplit().test;
    const BatchTruth truth = batchTruthTables(test_apps, params());

    std::vector<double> bips_err, power_err;
    for (std::size_t a = 0; a < test_apps.size(); ++a) {
        CfEngine bips_engine(trainingTables().bips, 1, kNumJobConfigs);
        CfEngine power_engine(trainingTables().power, 1,
                              kNumJobConfigs);
        bips_engine.observe(0, wide_idx, truth.bips(a, wide_idx));
        bips_engine.observe(0, narrow_idx, truth.bips(a, narrow_idx));
        power_engine.observe(0, wide_idx, truth.power(a, wide_idx));
        power_engine.observe(0, narrow_idx,
                             truth.power(a, narrow_idx));
        const Matrix bips_pred = bips_engine.predict();
        const Matrix power_pred = power_engine.predict();
        for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
            if (c == wide_idx || c == narrow_idx)
                continue;
            bips_err.push_back(
                relativeErrorPct(bips_pred(0, c), truth.bips(a, c)));
            power_err.push_back(
                relativeErrorPct(power_pred(0, c),
                                 truth.power(a, c)));
        }
    }

    // --- tail latency: 5 services at 80% load -------------------------
    // The latency matrix's known rows are the five services the
    // system has characterized offline at a grid of loads (the same
    // tables the runtime uses): the open question the reconstruction
    // answers is the live row — this service at a load it has never
    // been characterized at, anchored by one measured entry.
    std::vector<double> tail_err;
    std::size_t tail_class_total = 0, tail_class_correct = 0;
    std::size_t tail_unsafe = 0;
    const std::size_t anchor =
        JobConfig(CoreConfig::widest(), kNumCacheAllocs - 1).index();
    for (const auto &app : lcApps()) {
        LcCurveOptions curve_opts;
        const auto curve =
            lcTailCurve(app, 0.8 * app.maxQps, params(), curve_opts);

        SgdOptions latency_opts;
        latency_opts.logTransform = true;
        CfEngine engine(trainingTables().latency, 1, kNumJobConfigs,
                        latency_opts);
        engine.setTrainingContext(trainingTables().latencyRowUtil);
        // The runtime measures its utilization; in isolation the
        // analytic reference-configuration value is identical.
        const double ips =
            coreIps(app, JobConfig::fromIndex(anchor), params());
        engine.setJobContext(
            0, std::min(1.0, 0.8 * app.maxQps *
                                 app.requestInstructions() /
                                 (16.0 * ips)));
        engine.observe(0, anchor, curve[anchor]);
        const Matrix pred = engine.predict();
        for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
            if (c == anchor)
                continue;
            const double actual = curve[c];
            const double predicted = pred(0, c);
            // Section VIII-B: for configurations with very high tail
            // latency "exact latency prediction is less critical, as
            // long as the prediction shows that QoS is violated" —
            // those go into the classification tally; the error box
            // plot covers the decision-relevant (QoS-viable) configs.
            if (actual <= app.qosSeconds()) {
                tail_err.push_back(
                    relativeErrorPct(predicted, actual));
            }
            const bool actual_viol = actual > app.qosSeconds();
            const bool pred_viol = predicted > app.qosSeconds();
            ++tail_class_total;
            tail_class_correct += actual_viol == pred_viol ? 1 : 0;
            // Unsafe mistakes: predicted fine, actually violating.
            tail_unsafe += actual_viol && !pred_viol ? 1 : 0;
        }
    }

    printBox("throughput", bips_err);
    printBox("tail", tail_err);
    printBox("power", power_err);
    std::printf("(tail box plot covers QoS-viable configs; one "
                "measured entry per service, utilization-context "
                "blending)\n");
    std::printf("tail QoS-violation classification: %zu/%zu correct "
                "(%.1f%%), unsafe mistakes: %zu\n",
                tail_class_correct, tail_class_total,
                100.0 * static_cast<double>(tail_class_correct) /
                    static_cast<double>(tail_class_total),
                tail_unsafe);

    const auto check = [](const char *name,
                          const std::vector<double> &errors,
                          double quartile_bound, double tail_bound) {
        const BoxPlot box = boxPlot(errors);
        const bool quartiles_ok =
            box.q1 >= -quartile_bound && box.q3 <= quartile_bound;
        const bool tails_ok =
            box.p5 >= -tail_bound && box.p95 <= tail_bound;
        std::printf("%-12s quartiles within %.0f%%: %-3s  "
                    "p5/p95 within %.0f%%: %s\n",
                    name, quartile_bound, quartiles_ok ? "yes" : "NO",
                    tail_bound, tails_ok ? "yes" : "NO");
    };
    std::printf("\nPaper-shape checks:\n");
    check("throughput", bips_err, 10.0, 20.0);
    check("tail", tail_err, 15.0, 40.0);
    check("power", power_err, 10.0, 20.0);
    return 0;
}
