/**
 * @file
 * Fig 8c: core relocation. The load rises beyond what the initial 16
 * LC cores can serve within QoS even at {6,6,6}; CuttleSys reclaims
 * cores from the batch jobs one per timeslice, then yields them back
 * once the load drops and the measured latency has >= 20% slack.
 */

#include "bench_common.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("fig08c_relocation",
           "core relocation under a load surge (xapian + SPEC mix)",
           "QoS miss at {6,6,6} -> reclaim cores (16 -> 17/18) -> "
           "QoS met -> load drops -> cores yielded at 20% slack; "
           "batch throughput dips while cores are lent");

    WorkloadMix mix = evaluationMixes()[0];
    // Load rises to 135% of the calibrated knee: beyond 16-core
    // capacity at QoS, forcing relocation (the paper engineers the
    // same situation).
    MulticoreSim sim(params(), mix, 702);
    auto sched = makeCuttleSys(mix);

    DriverOptions opts = driverOptions(0.9, 0.8, 3.6);
    opts.loadPattern = LoadPattern::steps(
        {{0.0, 0.5}, {0.6, 1.35}, {1.6, 0.25}});
    const RunResult r = runColocation(sim, *sched, opts);

    std::printf("%6s %6s %8s %6s %8s %10s\n", "t(s)", "load%",
                "p99/QoS", "cores", "gmean", "lcConfig");
    std::size_t max_cores = 0;
    for (const auto &s : r.slices) {
        max_cores = std::max(max_cores, s.decision.lcCores);
        std::printf("%6.1f %5.0f%% %7.2f%s %6zu %8.2f %10s\n",
                    s.measurement.timeSec, s.loadFraction * 100.0,
                    s.measurement.lcTailLatency /
                        mix.lc.qosSeconds(),
                    s.qosViolated ? "*" : " ",
                    s.decision.lcCores,
                    gmeanBatchBips(s.measurement),
                    s.decision.lcConfig.toString().c_str());
    }

    const std::size_t final_cores = r.slices.back().decision.lcCores;
    std::printf("\npeak LC cores: %zu (started 16; paper relocates "
                "one core per violating timeslice)\n", max_cores);
    std::printf("final LC cores after the load drop: %zu (paper: "
                "yielded back at 20%% latency slack)\n", final_cores);
    std::printf("relocation happened: %s; cores returned: %s\n",
                max_cores > 16 ? "yes" : "NO",
                final_cores == 16 ? "yes" : "NO");
    return 0;
}
