/**
 * @file
 * Table I: the simulated system's configuration, plus the derived
 * power envelope the power caps are fractions of.
 */

#include "bench_common.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("table1_system", "simulated system parameters (Table I)",
           "32 cores, 144 ROB, 192/144 regs, 48 IQ/LQ/SQ, 64MB "
           "32-way LLC, 22nm 0.8V 4GHz");

    std::printf("%s\n", params().toString().c_str());

    std::printf("Derived power envelope:\n");
    std::printf("  systemMaxPower (Section VII-A reference): %.1f W\n",
                maxPowerW());
    for (double cap : {0.9, 0.8, 0.7, 0.6, 0.5}) {
        std::printf("  %3.0f%% power cap: %.1f W\n", cap * 100.0,
                    cap * maxPowerW());
    }

    std::printf("\nConfiguration space: %zu core configs x %zu cache "
                "allocations = %zu joint configs per job\n",
                kNumCoreConfigs, kNumCacheAllocs, kNumJobConfigs);
    return 0;
}
