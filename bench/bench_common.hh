/**
 * @file
 * Shared support for the figure/table reproduction benches.
 *
 * Every bench binary regenerates one table or figure from the paper:
 * it prints the same rows/series the paper reports, alongside the
 * paper's own numbers where they are quotable, so EXPERIMENTS.md can
 * be filled by running every binary under build/bench/ in turn.
 *
 * Heavyweight shared state (max-QPS calibration, offline training
 * tables) is built once per process and cached. Environment knobs:
 *   CS_BENCH_MIXES    mixes per LC service in sweep benches (default 2)
 *   CS_BENCH_DURATION simulated seconds per run (default 0.8)
 */

#ifndef CUTTLESYS_BENCH_COMMON_HH
#define CUTTLESYS_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "apps/gallery.hh"
#include "apps/mix.hh"
#include "common/logging.hh"
#include "core/cuttlesys.hh"
#include "core/training.hh"
#include "lcsim/calibrate.hh"
#include "power/power_model.hh"
#include "sim/driver.hh"
#include "sim/ground_truth.hh"

namespace cuttlesys::bench {

/** Reference system parameters for every bench. */
inline const SystemParams &
params()
{
    static const SystemParams p;
    return p;
}

/** Calibrated TailBench services (knee-point loads filled in). */
inline const std::vector<AppProfile> &
lcApps()
{
    static const std::vector<AppProfile> apps = [] {
        std::vector<AppProfile> gallery = tailbenchGallery();
        MaxQpsOptions opts;
        opts.warmupSec = 0.3;
        opts.measureSec = 1.0;
        opts.iterations = 14;
        calibrateMaxQps(gallery, params(), opts);
        return gallery;
    }();
    return apps;
}

/** Canonical 16/12 train/test split of the SPEC gallery. */
inline const TrainTestSplit &
specSplit()
{
    static const TrainTestSplit split = splitSpecGallery();
    return split;
}

/** Offline training tables (Section V), built once. */
inline const TrainingTables &
trainingTables()
{
    static const TrainingTables tables = [] {
        TrainingOptions opts;
        opts.latencyLoads = {0.25, 0.55, 0.85};
        return buildTrainingTables(specSplit().train, lcApps(),
                                   params(), opts);
    }();
    return tables;
}

/** The evaluation's reference maximum power (Section VII-A). */
inline double
maxPowerW()
{
    static const double watts =
        systemMaxPower(specSplit().test, params());
    return watts;
}

/** Evaluation colocations: each LC service x several mixes. */
inline const std::vector<WorkloadMix> &
evaluationMixes()
{
    static const std::vector<WorkloadMix> mixes =
        makeEvaluationMixes(lcApps(), specSplit().test, 10);
    return mixes;
}

inline std::size_t
envSize(const char *name, std::size_t fallback)
{
    if (const char *v = std::getenv(name)) {
        const long parsed = std::atol(v);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    return fallback;
}

inline double
envDouble(const char *name, double fallback)
{
    if (const char *v = std::getenv(name)) {
        const double parsed = std::atof(v);
        if (parsed > 0.0)
            return parsed;
    }
    return fallback;
}

/** Mixes per LC service used by sweep benches. */
inline std::size_t
mixesPerLc()
{
    return envSize("CS_BENCH_MIXES", 2);
}

/** Simulated seconds per scheduler run. */
inline double
runDuration()
{
    return envDouble("CS_BENCH_DURATION", 0.8);
}

/** Fresh CuttleSys scheduler for a mix. */
inline std::unique_ptr<CuttleSysScheduler>
makeCuttleSys(const WorkloadMix &mix, CuttleSysOptions options = {})
{
    return std::make_unique<CuttleSysScheduler>(
        params(), trainingTables(), mix.batch.size(),
        mix.lc.qosSeconds(), std::move(options));
}

/** Standard driver options for a cap/load point. */
inline DriverOptions
driverOptions(double cap_fraction, double load_fraction = 0.8,
              double duration = -1.0)
{
    DriverOptions opts;
    opts.durationSec = duration > 0.0 ? duration : runDuration();
    opts.loadPattern = LoadPattern::constant(load_fraction);
    opts.powerPattern = LoadPattern::constant(cap_fraction);
    opts.maxPowerW = maxPowerW();
    return opts;
}

/** Bench banner: which figure/table, what the paper reported. */
inline void
banner(const char *id, const char *title, const char *paper_says)
{
    std::printf("==============================================="
                "=========================\n");
    std::printf("%s — %s\n", id, title);
    std::printf("paper: %s\n", paper_says);
    std::printf("-----------------------------------------------"
                "-------------------------\n");
}

} // namespace cuttlesys::bench

#endif // CUTTLESYS_BENCH_COMMON_HH
