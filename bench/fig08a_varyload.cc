/**
 * @file
 * Fig 8a: CuttleSys under a diurnal input-load pattern at a 70% power
 * cap — per-slice traces of load, tail latency vs QoS, batch gmean
 * throughput, chip power vs budget, and the chosen LC configuration.
 */

#include "bench_common.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("fig08a_varyload",
           "diurnal load sweep at 70% cap (xapian + SPEC mix)",
           "low load -> cheap LC config ({4,2,4}); load spike -> "
           "brief QoS violation, jump to {6,6,6}, recover; batch "
           "throughput moves inversely to LC power");

    const WorkloadMix &mix = evaluationMixes()[0]; // xapian
    MulticoreSim sim(params(), mix, 700);
    auto sched = makeCuttleSys(mix);

    DriverOptions opts = driverOptions(0.7, 0.8, 2.0);
    opts.loadPattern = LoadPattern::diurnal(0.2, 1.0, 2.0);
    const RunResult r = runColocation(sim, *sched, opts);

    std::printf("%6s %6s %10s %8s %8s %8s %10s %6s\n", "t(s)",
                "load%", "p99/QoS", "gmean", "P(W)", "budget",
                "lcConfig", "cores");
    for (const auto &s : r.slices) {
        std::printf("%6.1f %5.0f%% %9.2f%s %8.2f %8.1f %8.1f %10s "
                    "%6zu\n",
                    s.measurement.timeSec, s.loadFraction * 100.0,
                    s.measurement.lcTailLatency /
                        mix.lc.qosSeconds(),
                    s.qosViolated ? "*" : " ",
                    gmeanBatchBips(s.measurement),
                    s.measurement.totalPower, s.powerBudgetW,
                    s.decision.lcConfig.toString().c_str(),
                    s.decision.lcCores);
    }

    // Shape checks: the energy-proportionality claim is about the LC
    // cluster's power, which reconfiguration cuts at low load.
    double low_power = 0.0, high_power = 0.0;
    std::size_t low_n = 0, high_n = 0;
    for (const auto &s : r.slices) {
        if (s.measurement.timeSec < 0.15)
            continue; // cold start
        if (s.loadFraction < 0.35) {
            low_power += s.measurement.lcPower;
            ++low_n;
        } else if (s.loadFraction > 0.85) {
            high_power += s.measurement.lcPower;
            ++high_n;
        }
    }
    std::printf("\nmean LC cluster power at <35%% load: %.1f W, at "
                ">85%% load: %.1f W (reconfiguration = energy "
                "proportionality)\n",
                low_power / std::max<std::size_t>(low_n, 1),
                high_power / std::max<std::size_t>(high_n, 1));
    std::printf("QoS violations over the sweep: %zu of %zu slices "
                "(paper shows a brief violation at the load spike)\n",
                r.qosViolations, r.slices.size());
    return 0;
}
