/**
 * @file
 * Fig 5b: SGD reconstruction error at runtime.
 *
 * Unlike Fig 5a this includes everything that makes online inference
 * hard: co-scheduled interference, 1 ms profiling samples, phase
 * drift. For each colocation we run CuttleSys and, on every slice
 * after warm-up, compare the prediction the scheduler made for each
 * job's *chosen* configuration against what the slice then measured.
 */

#include "bench_common.hh"
#include "common/stats.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

void
printBox(const char *metric, const std::vector<double> &errors)
{
    const BoxPlot box = boxPlot(errors);
    std::printf("%-12s p5=%7.1f%%  q1=%6.1f%%  med=%6.1f%%  "
                "q3=%6.1f%%  p95=%6.1f%%  outliers=%zu\n",
                metric, box.p5, box.q1, box.median, box.q3, box.p95,
                box.outliers.size());
}

} // namespace

int
main()
{
    setInformEnabled(false);
    banner("fig05b_accuracy_runtime",
           "prediction error at runtime, with colocation (box plots)",
           "median near 0, quartiles within 10%; wider p5/p95 and "
           "more outliers than isolation (phase changes, contention)");

    std::vector<double> bips_err, power_err, tail_err;

    std::size_t mix_index = 0;
    for (std::size_t lc = 0; lc < lcApps().size(); ++lc) {
        for (std::size_t m = 0; m < mixesPerLc(); ++m, ++mix_index) {
            const WorkloadMix &mix = evaluationMixes()[lc * 10 + m];
            MulticoreSim sim(params(), mix, 4000 + mix_index);
            auto scheduler = makeCuttleSys(mix);

            // Drive slice by slice so predictions can be compared to
            // the very next measurement.
            const DriverOptions opts = driverOptions(0.7, 0.8);
            const std::size_t slices = static_cast<std::size_t>(
                opts.durationSec / params().timesliceSec);
            SliceDecision prev_decision;
            SliceMeasurement prev_measurement;
            bool have_prev = false;
            for (std::size_t s = 0; s < slices; ++s) {
                sim.setLcLoadFraction(0.8);
                SliceContext ctx;
                ctx.sliceIndex = s;
                ctx.timeSec = sim.now();
                ctx.powerBudgetW = 0.7 * maxPowerW();
                ctx.lcQosSec = mix.lc.qosSeconds();
                ctx.previous = have_prev ? &prev_measurement : nullptr;
                ctx.previousDecision =
                    have_prev ? &prev_decision : nullptr;
                ctx.profiles = sim.profileJobs(
                    have_prev ? prev_decision.lcCores : 16);
                const SliceDecision decision = scheduler->decide(ctx);
                const SliceMeasurement measured = sim.runSlice(
                    decision, params().timesliceSec -
                              2.0 * params().sampleSec);

                if (s >= 3) {
                    for (std::size_t j = 0; j < mix.batch.size();
                         ++j) {
                        if (!decision.batchActive[j] ||
                            measured.batchBips[j] <= 0.0)
                            continue;
                        const std::size_t c =
                            decision.batchConfigs[j].index();
                        bips_err.push_back(relativeErrorPct(
                            scheduler->lastBipsPrediction()(1 + j, c),
                            measured.batchBips[j]));
                        power_err.push_back(relativeErrorPct(
                            scheduler->lastPowerPrediction()(1 + j,
                                                             c),
                            measured.batchPower[j]));
                    }
                    if (measured.lcCompleted > 50 &&
                        measured.lcTailLatency > 0.0) {
                        tail_err.push_back(relativeErrorPct(
                            scheduler->lastLatencyPrediction()(
                                0, decision.lcConfig.index()),
                            measured.lcTailLatency));
                    }
                }
                prev_decision = decision;
                prev_measurement = measured;
                have_prev = true;
            }
        }
    }

    printBox("throughput", bips_err);
    printBox("tail", tail_err);
    printBox("power", power_err);

    const BoxPlot bips_box = boxPlot(bips_err);
    const BoxPlot power_box = boxPlot(power_err);
    std::printf("\nPaper-shape checks:\n");
    std::printf("throughput quartiles within 10%%: %s\n",
                bips_box.q1 >= -10.0 && bips_box.q3 <= 10.0
                    ? "yes" : "NO");
    std::printf("power quartiles within 10%%: %s\n",
                power_box.q1 >= -10.0 && power_box.q3 <= 10.0
                    ? "yes" : "NO");
    std::printf("samples: %zu throughput, %zu tail, %zu power\n",
                bips_err.size(), tail_err.size(), power_err.size());
    return 0;
}
