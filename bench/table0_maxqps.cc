/**
 * @file
 * Section VII-A: maximum sustainable load of each TailBench service
 * on the 16-core reference system (knee point before saturation).
 */

#include "bench_common.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("table0_maxqps",
           "max QPS per latency-critical service (16-core knee point)",
           "xapian 22k, masstree 17k, imgdnn 8k, moses 8k, silo 24k");

    struct PaperRow { const char *name; double qps; };
    const PaperRow paper[] = {
        {"xapian", 22000}, {"masstree", 17000}, {"imgdnn", 8000},
        {"moses", 8000},   {"silo", 24000},
    };

    std::printf("%-10s %12s %12s %10s %10s\n", "service",
                "measured", "paper", "ratio", "QoS(ms)");
    for (const auto &app : lcApps()) {
        double paper_qps = 0.0;
        for (const auto &row : paper) {
            if (app.name == row.name)
                paper_qps = row.qps;
        }
        std::printf("%-10s %10.0f/s %10.0f/s %9.2fx %10.1f\n",
                    app.name.c_str(), app.maxQps, paper_qps,
                    app.maxQps / paper_qps, app.qosMs);
    }
    std::printf("\nOrdering check (paper: silo > xapian > masstree "
                ">> imgdnn ~ moses):\n");
    const auto &apps = lcApps();
    auto by_name = [&](const char *n) {
        for (const auto &a : apps) {
            if (a.name == n)
                return a.maxQps;
        }
        return 0.0;
    };
    std::printf("  silo > imgdnn: %s\n",
                by_name("silo") > by_name("imgdnn") ? "yes" : "NO");
    std::printf("  silo > moses:  %s\n",
                by_name("silo") > by_name("moses") ? "yes" : "NO");
    std::printf("  xapian > imgdnn: %s\n",
                by_name("xapian") > by_name("imgdnn") ? "yes" : "NO");
    return 0;
}
