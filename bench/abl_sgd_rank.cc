/**
 * @file
 * Ablation D1: latent rank of the PQ factorization. The paper's
 * Algorithm 1 uses rank = m*p (108); we default to 12. This bench
 * shows the accuracy/time trade-off that justifies the deviation.
 */

#include <chrono>

#include "bench_common.hh"
#include "cf/engine.hh"
#include "common/stats.hh"
#include "sim/ground_truth.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("abl_sgd_rank", "D1: SGD latent rank sweep",
           "paper uses rank = m*p = 108; we default to 12");

    const auto &split = specSplit();
    const BatchTruth test_truth =
        batchTruthTables(split.test, params());
    const std::size_t wide = JobConfig(CoreConfig::widest(), 1).index();
    const std::size_t narrow =
        JobConfig(CoreConfig::narrowest(), 1).index();

    std::printf("%6s %14s %12s %14s\n", "rank", "median|err|",
                "p95|err|", "predict time");
    for (std::size_t rank : {4u, 8u, 12u, 24u, 48u, 108u}) {
        std::vector<double> errors;
        double millis = 0.0;
        for (std::size_t a = 0; a < split.test.size(); ++a) {
            SgdOptions options;
            options.rank = rank;
            CfEngine engine(trainingTables().bips, 1, kNumJobConfigs,
                            options);
            engine.observe(0, wide, test_truth.bips(a, wide));
            engine.observe(0, narrow, test_truth.bips(a, narrow));
            const auto start = std::chrono::steady_clock::now();
            const Matrix pred = engine.predict();
            millis += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
            for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
                if (c == wide || c == narrow)
                    continue;
                errors.push_back(std::abs(relativeErrorPct(
                    pred(0, c), test_truth.bips(a, c))));
            }
        }
        std::printf("%6zu %13.1f%% %11.1f%% %12.2fms\n", rank,
                    percentile(errors, 50.0), percentile(errors, 95.0),
                    millis / static_cast<double>(split.test.size()));
    }
    return 0;
}
