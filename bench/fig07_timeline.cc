/**
 * @file
 * Fig 7: instructions executed per 0.1 s timeslice over 1 s at a 70%
 * power cap, for core-level gating, the oracle asymmetric multicore,
 * and CuttleSys — showing how each scheme spends the budget (gating:
 * fewer cores flat out; asymmetric: all jobs on big/small cores;
 * CuttleSys: all cores active in downsized configurations).
 */

#include "baselines/asymmetric.hh"
#include "baselines/core_gating.hh"
#include "bench_common.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("fig07_timeline",
           "instructions per timeslice, per scheme, 70% cap, 1 s",
           "gating: gated cores execute nothing; asymm oracle: ~7/16 "
           "batch jobs on big cores; CuttleSys: all cores active, "
           "sections power-gated");

    const WorkloadMix &mix = evaluationMixes()[0]; // xapian/mix00
    const DriverOptions opts = driverOptions(0.7, 0.8, 1.0);

    struct Row
    {
        const char *name;
        std::vector<double> instr;
        std::vector<std::size_t> active;
    };
    std::vector<Row> rows;

    {
        MulticoreSim sim(params(), mix, 600);
        CoreGatingScheduler sched(params(), mix);
        const RunResult r = runColocation(sim, sched, opts);
        Row row{"core-gating", {}, {}};
        for (const auto &slice : r.slices) {
            row.instr.push_back(slice.measurement.batchInstructions);
            std::size_t active = 0;
            for (bool on : slice.decision.batchActive)
                active += on ? 1 : 0;
            row.active.push_back(active);
        }
        rows.push_back(std::move(row));
    }
    {
        MulticoreSim sim(params(), mix, 600);
        AsymmetricOracleScheduler sched(sim);
        const RunResult r = runColocation(sim, sched, opts);
        Row row{"asymm-oracle", {}, {}};
        for (const auto &slice : r.slices) {
            row.instr.push_back(slice.measurement.batchInstructions);
            std::size_t big = 0;
            for (const auto &c : slice.decision.batchConfigs)
                big += c.core() == CoreConfig::widest() ? 1 : 0;
            row.active.push_back(big);
        }
        rows.push_back(std::move(row));
    }
    {
        MulticoreSim sim(params(), mix, 600);
        auto sched = makeCuttleSys(mix);
        const RunResult r = runColocation(sim, *sched, opts);
        Row row{"CuttleSys", {}, {}};
        for (const auto &slice : r.slices) {
            row.instr.push_back(slice.measurement.batchInstructions);
            std::size_t active = 0;
            for (bool on : slice.decision.batchActive)
                active += on ? 1 : 0;
            row.active.push_back(active);
        }
        rows.push_back(std::move(row));
    }

    std::printf("%-14s", "t (s)");
    for (std::size_t s = 0; s < rows.front().instr.size(); ++s)
        std::printf(" %7.1f", 0.1 * static_cast<double>(s));
    std::printf("\n");
    for (const auto &row : rows) {
        std::printf("%-14s", row.name);
        for (double v : row.instr)
            std::printf(" %6.2fG", v / 1e9);
        std::printf("\n%-14s", "  active/big");
        for (std::size_t a : row.active)
            std::printf(" %7zu", a);
        std::printf("\n");
    }

    std::printf("\nShape checks:\n");
    bool gating_gates = false;
    for (std::size_t a : rows[0].active)
        gating_gates |= a < mix.batch.size();
    std::printf("  gating turns cores off at 70%% cap: %s\n",
                gating_gates ? "yes" : "NO");
    bool cuttlesys_keeps_all = true;
    for (std::size_t s = 2; s < rows[2].active.size(); ++s)
        cuttlesys_keeps_all &= rows[2].active[s] == mix.batch.size();
    std::printf("  CuttleSys keeps every batch job running: %s\n",
                cuttlesys_keeps_all ? "yes" : "NO");
    return 0;
}
