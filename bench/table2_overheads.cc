/**
 * @file
 * Table II: runtime overheads of the CuttleSys scheduling pipeline,
 * measured with google-benchmark at the paper's operating point
 * (21 training rows + 17 live rows x 108 configurations for SGD;
 * 16-dimensional space, Fig 6 parameters for DDS).
 *
 * Paper: 2 x 1 ms profiling samples, 4.8 ms total SGD reconstruction
 * (three instances in parallel), 1.3 ms DDS search. The Hogwild
 * parallel SGD is 3.5x faster than locked/serial execution.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "cf/engine.hh"
#include "common/thread_pool.hh"
#include "search/dds.hh"
#include "search/ga.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

/** Rating matrix shaped like the runtime's throughput matrix. */
RatingMatrix
runtimeShapedMatrix(std::size_t live_samples_per_row)
{
    const TrainingTables &tables = trainingTables();
    const std::size_t training = tables.bips.rows();
    const std::size_t live = 17;
    RatingMatrix ratings(training + live, kNumJobConfigs);
    for (std::size_t r = 0; r < training; ++r) {
        for (std::size_t c = 0; c < kNumJobConfigs; ++c)
            ratings.set(r, c, tables.bips(r, c));
    }
    Rng rng(77);
    for (std::size_t r = training; r < training + live; ++r) {
        const auto picks = rng.sampleWithoutReplacement(
            kNumJobConfigs, live_samples_per_row);
        for (auto c : picks)
            ratings.set(r, c, rng.uniform(0.5, 8.0));
    }
    return ratings;
}

void
BM_SgdSerial(benchmark::State &state)
{
    const RatingMatrix ratings = runtimeShapedMatrix(2);
    SgdOptions options;
    options.threads = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(reconstruct(ratings, options));
    }
}
BENCHMARK(BM_SgdSerial)->Unit(benchmark::kMillisecond);

void
BM_SgdParallel4(benchmark::State &state)
{
    const RatingMatrix ratings = runtimeShapedMatrix(2);
    SgdOptions options;
    options.threads = 4;
    for (auto _ : state) {
        benchmark::DoNotOptimize(reconstruct(ratings, options));
    }
}
BENCHMARK(BM_SgdParallel4)->Unit(benchmark::kMillisecond);

void
BM_SgdWarmStart(benchmark::State &state)
{
    // The steady-state quantum: reconstruct the same matrix starting
    // from the previous quantum's factors.
    const RatingMatrix ratings = runtimeShapedMatrix(2);
    SgdOptions options;
    options.threads = 4;
    const SgdResult cold = reconstruct(ratings, options);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            reconstruct(ratings, options, nullptr, &cold.factors));
    }
}
BENCHMARK(BM_SgdWarmStart)->Unit(benchmark::kMillisecond);

void
BM_TripleReconstructPooled(benchmark::State &state)
{
    // The runtime's reconstructAll(): three engines on the shared
    // pool, steady state (warm factors after the first call).
    const TrainingTables &tables = trainingTables();
    CfEngine bips(tables.bips, 17, kNumJobConfigs);
    CfEngine power(tables.power, 17, kNumJobConfigs);
    CfEngine latency(tables.latency, 1, kNumJobConfigs);
    bips.options().threads = 4;
    power.options().threads = 4;
    latency.options().threads = 2;
    latency.options().logTransform = true;
    Rng rng(79);
    for (std::size_t j = 0; j < 17; ++j) {
        bips.observe(j, 0, rng.uniform(0.5, 8.0));
        bips.observe(j, kNumJobConfigs - 1, rng.uniform(0.5, 8.0));
        power.observe(j, 0, rng.uniform(0.5, 3.0));
        power.observe(j, kNumJobConfigs - 1, rng.uniform(0.5, 3.0));
    }
    latency.observe(0, kNumJobConfigs - 1, 5e-3);
    Matrix pred_bips, pred_power, pred_latency;
    for (auto _ : state) {
        ThreadPool::global().parallelFor(3, [&](std::size_t metric) {
            switch (metric) {
              case 0: bips.predictInto(pred_bips); break;
              case 1: power.predictInto(pred_power); break;
              default: latency.predictInto(pred_latency); break;
            }
        });
        benchmark::DoNotOptimize(pred_bips);
    }
}
BENCHMARK(BM_TripleReconstructPooled)->Unit(benchmark::kMillisecond);

/** Objective landscape shaped like one decision quantum's. */
struct SearchSetup
{
    Matrix bips{16, kNumJobConfigs};
    Matrix power{16, kNumJobConfigs};
    ObjectiveContext ctx;

    SearchSetup()
    {
        const TrainingTables &tables = trainingTables();
        for (std::size_t j = 0; j < 16; ++j) {
            const std::size_t src = j % tables.bips.rows();
            for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
                bips(j, c) = tables.bips(src, c);
                power(j, c) = tables.power(src, c);
            }
        }
        ctx.bips = &bips;
        ctx.power = &power;
        ctx.powerBudgetW = 30.0;
        ctx.cacheBudgetWays = 28.0;
    }
};

void
BM_ParallelDds(benchmark::State &state)
{
    const SearchSetup setup;
    DdsOptions options;
    options.threads = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(parallelDds(setup.ctx, options));
    }
}
BENCHMARK(BM_ParallelDds)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_SerialDds(benchmark::State &state)
{
    const SearchSetup setup;
    DdsOptions options;
    // Match the parallel evaluation budget.
    options.maxIterations = 40 * 10 * 8;
    for (auto _ : state) {
        benchmark::DoNotOptimize(serialDds(setup.ctx, options));
    }
}
BENCHMARK(BM_SerialDds)->Unit(benchmark::kMillisecond);

void
BM_DdsReference(benchmark::State &state)
{
    // Full evaluatePoint per candidate (the pre-delta inner loop).
    const SearchSetup setup;
    DdsOptions options;
    options.threads = 8;
    options.useDeltaEval = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(parallelDds(setup.ctx, options));
    }
}
BENCHMARK(BM_DdsReference)->Unit(benchmark::kMillisecond);

void
BM_DdsDelta(benchmark::State &state)
{
    // O(#perturbed-dims) delta evaluation per candidate.
    const SearchSetup setup;
    DdsOptions options;
    options.threads = 8;
    options.useDeltaEval = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(parallelDds(setup.ctx, options));
    }
}
BENCHMARK(BM_DdsDelta)->Unit(benchmark::kMillisecond);

void
BM_GeneticSearch(benchmark::State &state)
{
    const SearchSetup setup;
    for (auto _ : state) {
        benchmark::DoNotOptimize(geneticSearch(setup.ctx));
    }
}
BENCHMARK(BM_GeneticSearch)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    setInformEnabled(false);
    banner("table2_overheads", "scheduling-pipeline overheads",
           "sampling 2x1 ms; SGD reconstruction 4.8 ms; DDS search "
           "1.3 ms; Hogwild SGD ~3.5x faster than serial");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
