/**
 * @file
 * Section VIII-A2: training-set-size sensitivity. The paper selected
 * the fewest offline-characterized applications (16) that keep
 * reconstruction inaccuracy under ~10%; 8 apps give ~20% inaccuracy,
 * 24 apps ~8% at ~18% more SGD time.
 */

#include <chrono>

#include "bench_common.hh"
#include "cf/engine.hh"
#include "common/stats.hh"
#include "sim/ground_truth.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

std::size_t
oneWayRank()
{
    for (std::size_t i = 0; i < kNumCacheAllocs; ++i) {
        if (kCacheAllocWays[i] == 1.0)
            return i;
    }
    return 1;
}

struct Outcome
{
    double medianAbsErrPct = 0.0;
    double p95AbsErrPct = 0.0;
    double sgdMillis = 0.0;
};

Outcome
evaluateTrainingSize(std::size_t train_count)
{
    const TrainTestSplit split = splitSpecGallery(train_count);
    const BatchTruth train_truth =
        batchTruthTables(split.train, params(), true, 0.01);
    const BatchTruth test_truth =
        batchTruthTables(split.test, params());

    const std::size_t wide =
        JobConfig(CoreConfig::widest(), oneWayRank()).index();
    const std::size_t narrow =
        JobConfig(CoreConfig::narrowest(), oneWayRank()).index();

    std::vector<double> errors;
    double millis = 0.0;
    for (std::size_t a = 0; a < split.test.size(); ++a) {
        CfEngine engine(train_truth.bips, 1, kNumJobConfigs);
        engine.observe(0, wide, test_truth.bips(a, wide));
        engine.observe(0, narrow, test_truth.bips(a, narrow));
        const auto start = std::chrono::steady_clock::now();
        const Matrix pred = engine.predict();
        millis += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
            if (c == wide || c == narrow)
                continue;
            errors.push_back(std::abs(relativeErrorPct(
                pred(0, c), test_truth.bips(a, c))));
        }
    }
    Outcome out;
    out.medianAbsErrPct = percentile(errors, 50.0);
    out.p95AbsErrPct = percentile(errors, 95.0);
    out.sgdMillis = millis / static_cast<double>(split.test.size());
    return out;
}

} // namespace

int
main()
{
    setInformEnabled(false);
    banner("tableA_trainingset",
           "training-set size vs reconstruction inaccuracy "
           "(Section VIII-A2)",
           "8 apps -> ~20% inaccuracy; 16 -> ~10%; 24 -> ~8% with "
           "+18% SGD time");

    std::printf("%8s %14s %12s %14s\n", "train", "median|err|",
                "p95|err|", "SGD time/app");
    Outcome baseline;
    for (std::size_t n : {8u, 16u, 24u}) {
        const Outcome out = evaluateTrainingSize(n);
        if (n == 16)
            baseline = out;
        std::printf("%8zu %13.1f%% %11.1f%% %12.2fms\n", n,
                    out.medianAbsErrPct, out.p95AbsErrPct,
                    out.sgdMillis);
    }

    const Outcome small = evaluateTrainingSize(8);
    const Outcome large = evaluateTrainingSize(24);
    std::printf("\nShape checks:\n");
    std::printf("  8-app error > 16-app error: %s\n",
                small.medianAbsErrPct > baseline.medianAbsErrPct
                    ? "yes" : "NO");
    std::printf("  24-app error <= 16-app error: %s\n",
                large.medianAbsErrPct <=
                        baseline.medianAbsErrPct + 1.0
                    ? "yes" : "NO");
    std::printf("  24-app SGD time >= 16-app: %s (%.0f%% more)\n",
                large.sgdMillis >= baseline.sgdMillis ? "yes" : "NO",
                (large.sgdMillis / baseline.sgdMillis - 1.0) * 100.0);
    return 0;
}
