/**
 * @file
 * Ablations D2 and D7: how sparse live rows are reconstructed.
 *
 * D2 (paper): parallel SGD trades ~1% accuracy for a multi-x speedup
 * over serial SGD (the paper runs lock-free Hogwild; ours is the
 * deterministic stratified schedule, cf/sgd.cc).
 * D7 (ours): very sparse rows are predicted by neighborhood blending
 * instead of factor fold-in; the factor-only and no-fold-in variants
 * show why.
 */

#include <chrono>

#include "bench_common.hh"
#include "cf/engine.hh"
#include "common/stats.hh"
#include "sim/ground_truth.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

struct Variant
{
    const char *name;
    SgdOptions options;
};

} // namespace

int
main()
{
    setInformEnabled(false);
    banner("abl_sparse_rows",
           "D2/D7: sparse-row reconstruction variants",
           "paper: Hogwild ~3.5x faster at ~1% accuracy cost; ours: "
           "neighborhood blending for 2-sample rows");

    const auto &split = specSplit();
    const BatchTruth truth = batchTruthTables(split.test, params());
    const std::size_t wide = JobConfig(CoreConfig::widest(), 1).index();
    const std::size_t narrow =
        JobConfig(CoreConfig::narrowest(), 1).index();

    std::vector<Variant> variants;
    variants.push_back({"default (blend + fold-in)", {}});
    {
        SgdOptions o;
        o.rowBlendThreshold = 0;
        variants.push_back({"factor fold-in only", o});
    }
    {
        SgdOptions o;
        o.rowBlendThreshold = 0;
        o.foldInRows = false;
        variants.push_back({"raw SGD (no fold-in)", o});
    }
    {
        SgdOptions o;
        o.threads = 4;
        variants.push_back({"default + parallel(4)", o});
    }
    {
        SgdOptions o;
        o.svdWarmStart = true;
        variants.push_back({"default + SVD warm start", o});
    }

    std::printf("%-28s %14s %12s %12s\n", "variant", "median|err|",
                "p95|err|", "time/app");
    for (const auto &variant : variants) {
        std::vector<double> errors;
        double millis = 0.0;
        for (std::size_t a = 0; a < split.test.size(); ++a) {
            CfEngine engine(trainingTables().bips, 1, kNumJobConfigs,
                            variant.options);
            engine.observe(0, wide, truth.bips(a, wide));
            engine.observe(0, narrow, truth.bips(a, narrow));
            const auto start = std::chrono::steady_clock::now();
            const Matrix pred = engine.predict();
            millis += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
            for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
                if (c == wide || c == narrow)
                    continue;
                errors.push_back(std::abs(relativeErrorPct(
                    pred(0, c), truth.bips(a, c))));
            }
        }
        std::printf("%-28s %13.1f%% %11.1f%% %10.2fms\n",
                    variant.name, percentile(errors, 50.0),
                    percentile(errors, 95.0),
                    millis /
                        static_cast<double>(split.test.size()));
    }
    return 0;
}
