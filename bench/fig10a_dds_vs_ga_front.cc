/**
 * @file
 * Fig 10a: the points DDS and GA explore on the (power,
 * 1/throughput) plane for one decision quantum's objective, with the
 * best point of each and, since the 16-job space is enumerable per
 * coordinate, a greedy reference. The paper's observation: DDS
 * explores more points near the pareto front under the budget line
 * and lands on a better configuration.
 */

#include <algorithm>

#include "bench_common.hh"
#include "search/dds.hh"
#include "search/ga.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("fig10a_dds_vs_ga_front",
           "explored points: DDS vs GA (power vs 1/throughput)",
           "DDS explores more pareto-front points under the budget "
           "and finds a better best point than GA");

    // Objective for one quantum: 16 batch jobs from the training
    // tables, a 30 W batch budget, 28 LLC ways.
    Matrix bips(16, kNumJobConfigs), power(16, kNumJobConfigs);
    for (std::size_t j = 0; j < 16; ++j) {
        const std::size_t src = j % trainingTables().bips.rows();
        for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
            bips(j, c) = trainingTables().bips(src, c);
            power(j, c) = trainingTables().power(src, c);
        }
    }
    ObjectiveContext ctx;
    ctx.bips = &bips;
    ctx.power = &power;
    ctx.powerBudgetW = 30.0;
    ctx.cacheBudgetWays = 28.0;

    SearchTrace dds_trace, ga_trace;
    const SearchResult dds = parallelDds(ctx, {}, &dds_trace);
    GaOptions ga_opts;
    const SearchResult ga = geneticSearch(ctx, ga_opts, &ga_trace);

    auto summarize = [&](const char *name, const SearchTrace &trace,
                         const SearchResult &result) {
        std::size_t feasible = 0;
        std::size_t near_front = 0;
        for (const auto &m : trace.explored) {
            feasible += m.feasible ? 1 : 0;
            if (m.feasible &&
                m.gmeanBips > 0.9 * result.metrics.gmeanBips)
                ++near_front;
        }
        std::printf("%-4s evals=%5zu feasible=%5zu near-front=%4zu "
                    "best: gmean=%.3f power=%.1fW obj=%.3f\n",
                    name, trace.explored.size(), feasible, near_front,
                    result.metrics.gmeanBips, result.metrics.powerW,
                    result.metrics.objective);
        return near_front;
    };
    const std::size_t dds_front = summarize("DDS", dds_trace, dds);
    const std::size_t ga_front = summarize("GA", ga_trace, ga);

    // A decile sketch of the explored clouds: counts per power band.
    std::printf("\nexplored-point histogram over power (W):\n");
    std::printf("%-6s", "band");
    for (int b = 0; b < 10; ++b)
        std::printf(" %5d-", 10 + 4 * b);
    std::printf("\n");
    const std::pair<const char *, const SearchTrace *> clouds[] = {
        {"DDS", &dds_trace}, {"GA", &ga_trace}};
    for (const auto &[name, trace] : clouds) {
        std::printf("%-6s", name);
        std::vector<std::size_t> bands(10, 0);
        for (const auto &m : trace->explored) {
            const int b = std::clamp(
                static_cast<int>((m.powerW - 10.0) / 4.0), 0, 9);
            ++bands[static_cast<std::size_t>(b)];
        }
        for (auto n : bands)
            std::printf(" %6zu", n);
        std::printf("\n");
    }

    std::printf("\nDDS best beats GA best: %s (%.3f vs %.3f)\n",
                dds.metrics.objective >= ga.metrics.objective
                    ? "yes" : "NO",
                dds.metrics.objective, ga.metrics.objective);
    std::printf("DDS explores more near-front points: %s (%zu vs "
                "%zu)\n",
                dds_front >= ga_front ? "yes" : "NO", dds_front,
                ga_front);
    return 0;
}
