/**
 * @file
 * Fleet-controller phase timing: controller overhead vs fleet size.
 *
 * Times the per-quantum control phases — churn, view gather,
 * placement, power split, load shift — over a synthetic fleet (no
 * per-node simulators, so the rows isolate pure controller overhead)
 * at N = 16/64/256/1024 nodes. Two controllers drive identical state
 * machines:
 *
 *  - "serial" reproduces the pre-rework controller: a sequential
 *    churn RNG drawn node-major, O(slots) vacancy scans in the view
 *    gather, a full O(N) policy rescan per placed job, and
 *    single-threaded power/shift loops.
 *  - "parallel" is the shipped path, built from the production
 *    components: counter-based JobChurnEngine draws staged
 *    block-parallel in per-worker arenas, O(1) vacancy counters,
 *    PlacementRound's score-once-commit-through-a-heap placement,
 *    ClusterPowerManager's block-parallel split, and the parallel
 *    load scan.
 *
 * A determinism section replays the parallel controller at pool
 * widths 1/4/8 and folds every quantum's full state (occupancy
 * bytes, budget and load bits, counters) into a digest that must
 * match bitwise across widths (DESIGN.md §12). A steady-state
 * allocation row counts heap traffic per parallel quantum via the
 * cs_alloc_probe operator-new replacement (must be 0).
 *
 * An incremental-decisions section then drives the *real*
 * FleetController (full per-node simulators) through the compressed
 * diurnal day twice per fleet size — stability gate + memo cache on
 * vs. --no-fastpath always-full — and reports the mean per-node
 * decision time (the scheduler-side phases: ingest, reconstruct,
 * search, enforce), the parallel node-step wall time per cluster
 * quantum, the fast-path hit rate, and the QoS / batch-Ginstr deltas
 * the reuse costs.
 *
 * A dag data-gravity section runs the real fleet with churned DAG
 * workflow arrivals twice — locality-aware placement vs the
 * locality-blind baseline (transfers modeled and charged in both) —
 * and reports completed workflows, gmean makespan, artifact hit
 * rate, transfer volume, and the QoS / Ginstr deltas.
 *
 * --smoke: exit nonzero unless the N=256 combined controller-phase
 * speedup is >= 3x, the width digests agree, the steady state is
 * allocation-free, the incremental A/B shows >= 2.5x mean
 * decision-time reduction at a >= 50% hit rate with QoS within 1
 * point and batch Ginstr within 1%, and the dag A/B completes
 * workflows with locality-aware gmean makespan strictly below blind
 * at unchanged QoS and batch throughput. Emits BENCH_fleet.json
 * next to stdout.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "apps/app_profile.hh"
#include "apps/gallery.hh"
#include "cluster/churn.hh"
#include "cluster/fleet.hh"
#include "cluster/node.hh"
#include "cluster/placement.hh"
#include "cluster/power_manager.hh"
#include "common/alloc_probe.hh"
#include "common/arena.hh"
#include "common/thread_pool.hh"
#include "core/training.hh"
#include "lcsim/calibrate.hh"
#include "power/power_model.hh"
#include "telemetry/trace_sink.hh"

using namespace cuttlesys;
using namespace cuttlesys::cluster;

namespace {

using Clock = std::chrono::steady_clock;

// A high-churn rack: two arrivals per node per quantum against a
// matching departure rate, holding occupancy near 52% — placement
// pressure scales with N, which is exactly the load the rework
// targets.
constexpr std::size_t kSlots = 16;          //!< batch slots per node
constexpr double kDepartureProb = 0.24;     //!< per occupied slot
constexpr double kArrivalsPerNode = 2.0;    //!< mean per quantum
constexpr double kBudgetPerNodeW = 95.0;
constexpr double kNodeFloorW = 30.0;
constexpr double kNodeCapW = 130.0;
constexpr std::size_t kChunk = 32;          //!< nodes per block
constexpr double kTwoPi = 6.283185307179586;

/** SplitMix64 finisher, used for the synthetic state and digests. */
std::uint64_t
mixBits(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** The sequential RNG the pre-rework churn phase consumed. */
struct SeqRng
{
    std::uint64_t state;

    std::uint64_t
    next()
    {
        state += 0x9e3779b97f4a7c15ULL;
        return mixBits(state);
    }

    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }
};

/** Small pool of short-named profiles churn arrivals draw from. */
std::vector<AppProfile>
syntheticPool()
{
    std::vector<AppProfile> pool(8);
    for (std::size_t i = 0; i < pool.size(); ++i) {
        pool[i].name = "batch-";
        pool[i].name += static_cast<char>('a' + i);
        pool[i].seed = 101 + i;
        pool[i].apki = 2.0 + static_cast<double>(i);
    }
    return pool;
}

/** Replica i's offered LC load at @p quantum (phase-staggered day). */
double
offeredLoad(std::uint64_t quantum, std::size_t i, std::size_t n)
{
    const double phase = static_cast<double>(quantum) / 96.0 +
        static_cast<double>(i) / static_cast<double>(n);
    return 0.5 + 0.45 * std::sin(kTwoPi * phase);
}

/**
 * The controller-visible cluster state both implementations drive:
 * planned occupancy, per-quantum views, the budget feedback loop, and
 * the FIFO arrival queue. The parallel path additionally maintains
 * the O(1) vacancy counters and first-vacant hints the reworked
 * ClusterNode keeps; the serial path ignores them and re-scans, as
 * the pre-rework controller did.
 */
struct SyntheticFleet
{
    std::size_t n = 0;
    std::size_t maxPending = 0;
    std::vector<std::uint8_t> occupied;    //!< n x kSlots
    std::vector<std::size_t> freeCount;    //!< per node (O(1) gather)
    std::vector<std::size_t> firstVacant;  //!< per node hint
    std::vector<NodeView> views;
    std::vector<double> budgets;           //!< fed back into views
    std::vector<double> loads;
    std::vector<PendingJob> pending;
    std::size_t pendingHead = 0;
    std::uint64_t quantum = 0;
    std::size_t arrivals = 0;
    std::size_t departures = 0;
    std::size_t placements = 0;
    std::size_t dropped = 0;

    std::size_t queued() const { return pending.size() - pendingHead; }
};

SyntheticFleet
makeFleet(std::size_t n, std::uint64_t seed)
{
    SyntheticFleet st;
    st.n = n;
    st.maxPending = 2 * n;
    st.occupied.assign(n * kSlots, 0);
    st.freeCount.assign(n, kSlots);
    st.firstVacant.assign(n, 0);
    st.views.resize(n);
    st.budgets.assign(n, kBudgetPerNodeW);
    st.loads.assign(n, 0.0);
    st.pending.reserve(st.maxPending + n);

    // Start near the churn equilibrium (~52% occupied) so the timed
    // quanta measure steady-state phase work from the first rep.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t s = 0; s < kSlots; ++s) {
            const std::uint64_t h =
                mixBits(seed ^ (i * kSlots + s) * 0x9e3779b97f4a7c15ULL);
            if ((static_cast<double>(h >> 11) * 0x1.0p-53) < 0.52) {
                st.occupied[i * kSlots + s] = 1;
                --st.freeCount[i];
            }
        }
        std::size_t v = 0;
        while (v < kSlots && st.occupied[i * kSlots + v])
            ++v;
        st.firstVacant[i] = v;
    }
    return st;
}

/** Fill node @p i's view for this quantum (shared by both paths). */
void
fillView(SyntheticFleet &st, std::size_t i, std::size_t free_slots)
{
    NodeView &v = st.views[i];
    const double load = offeredLoad(st.quantum, i, st.n);
    v.node = i;
    v.freeSlots = free_slots;
    v.occupiedSlots = kSlots - free_slots;
    v.loadFraction = load;
    v.budgetW = st.budgets[i];
    v.measuredPowerW = 40.0 + 55.0 * load +
        3.0 * static_cast<double>(v.occupiedSlots);
    v.headroomW = v.budgetW - v.measuredPowerW;
    v.qosViolated = load > 0.85;
    v.gmeanBips = 1.0;
    v.stepped = true;
}

/** Serial donor/receiver pairing and commit (shared by both paths). */
void
shiftCommit(SyntheticFleet &st)
{
    std::size_t receiver = PlacementPolicy::kNoNode;
    for (std::size_t i = 0; i < st.n; ++i) {
        if (st.views[i].qosViolated)
            continue;
        if (receiver == PlacementPolicy::kNoNode ||
            st.loads[i] < st.loads[receiver]) {
            receiver = i;
        }
    }
    if (receiver == PlacementPolicy::kNoNode)
        return;
    for (std::size_t i = 0; i < st.n; ++i) {
        if (!st.views[i].qosViolated || i == receiver)
            continue;
        const double moved = st.loads[i] * 0.15;
        st.loads[i] -= moved;
        st.loads[receiver] += moved;
    }
}

/** FIFO-queue compaction at end of quantum (shared by both paths). */
void
compactPending(SyntheticFleet &st)
{
    if (st.pendingHead == st.pending.size()) {
        st.pending.clear();
        st.pendingHead = 0;
    } else if (st.pendingHead >= 32 &&
               st.pendingHead * 2 >= st.pending.size()) {
        st.pending.erase(st.pending.begin(),
                         st.pending.begin() +
                             static_cast<std::ptrdiff_t>(st.pendingHead));
        st.pendingHead = 0;
    }
}

enum PhaseIdx { kChurn, kGather, kPlace, kPower, kShift, kNumPhases };

const char *const kPhaseNames[kNumPhases] = {
    "churn", "gather", "place", "power", "shift",
};

/** Per-phase accumulated microseconds for one configuration. */
struct PhaseUs
{
    double us[kNumPhases] = {};

    double
    total() const
    {
        double sum = 0.0;
        for (const double v : us)
            sum += v;
        return sum;
    }
};

class PhaseTimer
{
  public:
    PhaseTimer(PhaseUs &acc, PhaseIdx phase)
        : acc_(acc), phase_(phase), start_(Clock::now())
    {
    }

    ~PhaseTimer()
    {
        acc_.us[phase_] +=
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      start_).count();
    }

  private:
    PhaseUs &acc_;
    PhaseIdx phase_;
    Clock::time_point start_;
};

/**
 * The pre-rework controller quantum: every loop single-threaded,
 * every draw from one sequential stream, every vacancy re-scanned.
 */
struct SerialController
{
    const PlacementPolicy &policy;
    const std::vector<AppProfile> &pool;
    SeqRng rng;

    void
    quantum(SyntheticFleet &st, PhaseUs &acc)
    {
        const std::size_t n = st.n;
        {
            PhaseTimer t(acc, kChurn);
            // Departures: one Bernoulli per occupied slot, node-major
            // off the shared stream.
            for (std::size_t i = 0; i < n; ++i) {
                for (std::size_t s = 0; s < kSlots; ++s) {
                    std::uint8_t &occ = st.occupied[i * kSlots + s];
                    if (occ && rng.uniform() < kDepartureProb) {
                        occ = 0;
                        ++st.departures;
                    }
                }
            }
            // Arrivals: one cluster-wide count, then pool draws.
            const double mean =
                kArrivalsPerNode * static_cast<double>(n);
            const double whole = std::floor(mean);
            std::size_t count = static_cast<std::size_t>(whole);
            if (rng.uniform() < mean - whole)
                ++count;
            for (std::size_t k = 0; k < count; ++k) {
                if (st.queued() >= st.maxPending) {
                    ++st.dropped;
                    continue;
                }
                PendingJob job;
                job.profile = pool[rng.next() % pool.size()];
                job.profile.seed ^= rng.next();
                job.submitSlice = st.quantum;
                st.pending.push_back(std::move(job));
                ++st.arrivals;
            }
        }
        {
            PhaseTimer t(acc, kGather);
            // O(slots) vacancy scan per node, serial.
            for (std::size_t i = 0; i < n; ++i) {
                std::size_t free_slots = 0;
                for (std::size_t s = 0; s < kSlots; ++s) {
                    if (!st.occupied[i * kSlots + s])
                        ++free_slots;
                }
                fillView(st, i, free_slots);
            }
        }
        {
            PhaseTimer t(acc, kPlace);
            // Full policy rescan per job, O(slots) slot scan per
            // booking.
            while (st.pendingHead < st.pending.size()) {
                const std::size_t target =
                    policy.place(st.pending[st.pendingHead], st.views);
                if (target == PlacementPolicy::kNoNode)
                    break;
                std::size_t slot = 0;
                while (st.occupied[target * kSlots + slot])
                    ++slot;
                st.occupied[target * kSlots + slot] = 1;
                --st.views[target].freeSlots;
                ++st.views[target].occupiedSlots;
                ++st.placements;
                ++st.pendingHead;
            }
            compactPending(st);
        }
        {
            PhaseTimer t(acc, kPower);
            // The pre-rework ClusterPowerManager::split, verbatim
            // serial: weights, left-fold sum, fill, clip/redistribute.
            double weightSum = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const NodeView &v = st.views[i];
                double demand = v.stepped
                    ? std::max(v.measuredPowerW, kNodeFloorW)
                    : 1.0;
                if (v.qosViolated)
                    demand += 10.0;
                st.loads[i] = demand; // reuse as weight scratch
                weightSum += demand;
            }
            const double distributable =
                (kBudgetPerNodeW - kNodeFloorW) *
                static_cast<double>(n);
            for (std::size_t i = 0; i < n; ++i) {
                const double share = weightSum > 0.0
                    ? distributable * st.loads[i] / weightSum
                    : distributable / static_cast<double>(n);
                st.budgets[i] = kNodeFloorW + share;
            }
            double excess = 0.0;
            std::size_t uncapped = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (st.budgets[i] > kNodeCapW) {
                    excess += st.budgets[i] - kNodeCapW;
                    st.budgets[i] = kNodeCapW;
                } else {
                    ++uncapped;
                }
            }
            if (excess > 0.0 && uncapped > 0) {
                const double share =
                    excess / static_cast<double>(uncapped);
                for (std::size_t i = 0; i < n; ++i) {
                    if (st.budgets[i] < kNodeCapW) {
                        st.budgets[i] =
                            std::min(st.budgets[i] + share, kNodeCapW);
                    }
                }
            }
        }
        {
            PhaseTimer t(acc, kShift);
            for (std::size_t i = 0; i < n; ++i)
                st.loads[i] = offeredLoad(st.quantum + 1, i, st.n);
            shiftCommit(st);
        }
        ++st.quantum;
    }
};

/**
 * The shipped controller quantum, built from the production
 * components: parallel scans with per-worker arena staging, ordered
 * serial commits (the FleetController phase structure without the
 * per-node simulators).
 */
struct ParallelController
{
    ThreadPool &pool;
    const PlacementPolicy &policy;
    JobChurnEngine churn;
    ClusterPowerManager power;
    PlacementRound round;
    WorkerArenaSet arenas;

    struct NodePlan
    {
        std::uint16_t *departSlots = nullptr;
        std::uint16_t numDeparts = 0;
        std::uint16_t arrivals = 0;
    };
    std::vector<NodePlan> plan;

    ParallelController(ThreadPool &pool_ref,
                       const PlacementPolicy &placement,
                       const std::vector<AppProfile> &job_pool,
                       std::size_t n, std::uint64_t seed)
        : pool(pool_ref), policy(placement),
          churn(job_pool, n, seed,
                ChurnOptions{.departureProbability = kDepartureProb,
                             .meanArrivalsPerQuantum =
                                 kArrivalsPerNode *
                                 static_cast<double>(n),
                             .maxPendingJobs = 2 * n,
                             .tenantArrivalWeights = {}}),
          power(PowerPolicy::HeadroomRebalance,
                PowerManagerOptions{
                    .rackBudgetW =
                        kBudgetPerNodeW * static_cast<double>(n),
                    .nodeFloorW = kNodeFloorW,
                    .nodeCapW = kNodeCapW,
                    .qosBoostW = 10.0}),
          arenas(pool_ref.slotCount())
    {
        plan.resize(n);
        // Worst-case staging prewarm (one worker scanning the whole
        // fleet), as the production FleetController does: the worker
        // schedule varies, so without it an unlucky quantum grows an
        // arena mid-measurement.
        for (std::size_t s = 0; s < arenas.size(); ++s)
            arenas.at(s).alloc<std::uint16_t>(n * kSlots);
        arenas.resetAll();
    }

    void
    quantum(SyntheticFleet &st, PhaseUs &acc)
    {
        const std::size_t n = st.n;
        {
            PhaseTimer t(acc, kChurn);
            // Parallel scan: stage per-node departure lists in the
            // worker's arena; every draw is a pure function of its
            // coordinates.
            arenas.resetAll();
            pool.parallelChunks(
                n, kChunk,
                [this, &st](std::size_t, std::size_t begin,
                            std::size_t end) {
                    ScratchArena &arena =
                        arenas.at(ThreadPool::currentSlot());
                    for (std::size_t i = begin; i < end; ++i) {
                        std::uint16_t *stage =
                            arena.alloc<std::uint16_t>(kSlots);
                        std::uint16_t count = 0;
                        for (std::size_t s = 0; s < kSlots; ++s) {
                            if (st.occupied[i * kSlots + s] &&
                                churn.departs(st.quantum, i, s)) {
                                stage[count++] =
                                    static_cast<std::uint16_t>(s);
                            }
                        }
                        plan[i].departSlots = stage;
                        plan[i].numDeparts = count;
                        plan[i].arrivals =
                            static_cast<std::uint16_t>(
                                churn.arrivalsAt(st.quantum, i));
                    }
                });
            // Serial merge in node-index order.
            for (std::size_t i = 0; i < n; ++i) {
                for (std::uint16_t d = 0; d < plan[i].numDeparts;
                     ++d) {
                    const std::size_t s = plan[i].departSlots[d];
                    st.occupied[i * kSlots + s] = 0;
                    ++st.freeCount[i];
                    st.firstVacant[i] =
                        std::min(st.firstVacant[i], s);
                    ++st.departures;
                }
                for (std::uint16_t k = 0; k < plan[i].arrivals;
                     ++k) {
                    if (st.queued() >= st.maxPending) {
                        ++st.dropped;
                        continue;
                    }
                    PendingJob job;
                    job.profile = churn.drawJobAt(st.quantum, i, k);
                    job.submitSlice = st.quantum;
                    st.pending.push_back(std::move(job));
                    ++st.arrivals;
                }
            }
        }
        {
            PhaseTimer t(acc, kGather);
            // O(1) vacancy counters, block-parallel disjoint writes.
            pool.parallelChunks(
                n, kChunk,
                [&st](std::size_t, std::size_t begin,
                      std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i)
                        fillView(st, i, st.freeCount[i]);
                });
        }
        {
            PhaseTimer t(acc, kPlace);
            // Score once in parallel, commit the queue through the
            // heap.
            round.begin(policy, st.views, pool);
            while (st.pendingHead < st.pending.size()) {
                const std::size_t target = round.placeOne();
                if (target == PlacementPolicy::kNoNode)
                    break;
                std::size_t &hint = st.firstVacant[target];
                st.occupied[target * kSlots + hint] = 1;
                --st.freeCount[target];
                while (hint < kSlots &&
                       st.occupied[target * kSlots + hint]) {
                    ++hint;
                }
                ++st.placements;
                ++st.pendingHead;
            }
            compactPending(st);
        }
        {
            PhaseTimer t(acc, kPower);
            power.split(st.views, st.budgets, pool);
        }
        {
            PhaseTimer t(acc, kShift);
            pool.parallelChunks(
                n, kChunk,
                [&st](std::size_t, std::size_t begin,
                      std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                        st.loads[i] =
                            offeredLoad(st.quantum + 1, i, st.n);
                    }
                });
            shiftCommit(st);
        }
        ++st.quantum;
    }
};

/** Fold one quantum's full controller state into a digest. */
std::uint64_t
digestState(const SyntheticFleet &st, std::uint64_t digest)
{
    for (const std::uint8_t occ : st.occupied)
        digest = mixBits(digest ^ occ);
    for (const double v : st.budgets) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        digest = mixBits(digest ^ bits);
    }
    for (const double v : st.loads) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        digest = mixBits(digest ^ bits);
    }
    digest = mixBits(digest ^ st.queued());
    digest = mixBits(digest ^ st.arrivals);
    digest = mixBits(digest ^ st.departures);
    digest = mixBits(digest ^ st.placements);
    digest = mixBits(digest ^ st.dropped);
    return digest;
}

constexpr std::size_t kWarmQuanta = 3;

/** One curve point: best-of-reps per-quantum phase times. */
struct CurvePoint
{
    std::size_t nodes = 0;
    PhaseUs serial;    //!< per-quantum, best rep
    PhaseUs parallel;  //!< per-quantum, best rep
    double speedup = 0.0;
};

CurvePoint
measure(std::size_t n, std::size_t quanta, std::size_t reps,
        const PlacementPolicy &policy,
        const std::vector<AppProfile> &job_pool)
{
    CurvePoint pt;
    pt.nodes = n;
    double bestSerial = 1e18;
    double bestParallel = 1e18;

    for (std::size_t r = 0; r < reps; ++r) {
        SyntheticFleet st = makeFleet(n, 42);
        SerialController ctl{policy, job_pool, SeqRng{977 + r}};
        PhaseUs warm;
        for (std::size_t q = 0; q < kWarmQuanta; ++q)
            ctl.quantum(st, warm);
        PhaseUs acc;
        for (std::size_t q = 0; q < quanta; ++q)
            ctl.quantum(st, acc);
        if (acc.total() < bestSerial) {
            bestSerial = acc.total();
            for (std::size_t p = 0; p < kNumPhases; ++p) {
                pt.serial.us[p] =
                    acc.us[p] / static_cast<double>(quanta);
            }
        }
    }
    for (std::size_t r = 0; r < reps; ++r) {
        SyntheticFleet st = makeFleet(n, 42);
        ParallelController ctl(ThreadPool::global(), policy,
                               job_pool, n, 977 + r);
        PhaseUs warm;
        for (std::size_t q = 0; q < kWarmQuanta; ++q)
            ctl.quantum(st, warm);
        PhaseUs acc;
        for (std::size_t q = 0; q < quanta; ++q)
            ctl.quantum(st, acc);
        if (acc.total() < bestParallel) {
            bestParallel = acc.total();
            for (std::size_t p = 0; p < kNumPhases; ++p) {
                pt.parallel.us[p] =
                    acc.us[p] / static_cast<double>(quanta);
            }
        }
    }
    pt.speedup = pt.serial.total() / pt.parallel.total();
    return pt;
}

/**
 * Replay the parallel controller at several pool widths; the state
 * digest after every quantum must agree bitwise across widths.
 */
bool
deterministicAcrossWidths(std::size_t n, std::size_t quanta,
                          const PlacementPolicy &policy,
                          const std::vector<AppProfile> &job_pool,
                          const std::vector<std::size_t> &widths)
{
    std::uint64_t reference = 0;
    bool haveReference = false;
    for (const std::size_t w : widths) {
        ThreadPool pool(w);
        SyntheticFleet st = makeFleet(n, 42);
        ParallelController ctl(pool, policy, job_pool, n, 977);
        PhaseUs acc;
        std::uint64_t digest = 0;
        for (std::size_t q = 0; q < quanta; ++q) {
            ctl.quantum(st, acc);
            digest = digestState(st, digest);
        }
        if (!haveReference) {
            reference = digest;
            haveReference = true;
        } else if (digest != reference) {
            return false;
        }
    }
    return true;
}

/** Heap allocations per steady-state parallel quantum (must be 0). */
std::uint64_t
steadyStateAllocs(std::size_t n, const PlacementPolicy &policy,
                  const std::vector<AppProfile> &job_pool)
{
    SyntheticFleet st = makeFleet(n, 42);
    ParallelController ctl(ThreadPool::global(), policy, job_pool, n,
                           977);
    PhaseUs acc;
    for (std::size_t q = 0; q < 4; ++q)
        ctl.quantum(st, acc);

    constexpr std::size_t kSteady = 8;
    const std::uint64_t before = AllocProbe::newCount();
    for (std::size_t q = 0; q < kSteady; ++q)
        ctl.quantum(st, acc);
    const std::uint64_t after = AllocProbe::newCount();
    return (after - before) / kSteady;
}

// ---------------------------------------------------------------------
// Incremental decisions: the real FleetController, A/B vs always-full.

/** Quanta of warm-up excluded from the steady-state decision means
 *  (cold-start fulls and the first anchor updates). */
constexpr std::size_t kAbWarmQuanta = 4;

/** Everything the offline stack needs to build real fleets once. */
struct RealStack
{
    SystemParams params;
    TrainTestSplit split = splitSpecGallery();
    std::vector<AppProfile> services = tailbenchGallery();
    AppProfile lc;
    TrainingTables tables;
    double nodeMaxW = 0.0;

    RealStack()
    {
        calibrateMaxQps(services, params);
        for (const AppProfile &s : services) {
            if (s.name == "masstree")
                lc = s;
        }
        // Test-speed reconstruction budgets: the A/B compares the two
        // decision paths under identical search settings, so the
        // *ratio* is representative while the absolute full-quantum
        // cost stays benchable at 1024 nodes.
        TrainingOptions topts;
        topts.latencyLoads = {0.25, 0.55, 0.85};
        tables = buildTrainingTables(split.train, services, params,
                                     topts);
        nodeMaxW = systemMaxPower(split.test, params);
    }
};

/** One arm of the A/B: a full diurnal fleet run, instrumented. */
struct AbArm
{
    double decisionUs = 0.0; //!< mean per-node decision time, steady
    double phaseUs[telemetry::kNumPhases] = {}; //!< per node-quantum
    double stepUs = 0.0;     //!< mean cluster-quantum wall time
    std::size_t invalidations[telemetry::kNumInvalidationReasons] =
        {}; //!< why full quanta ran (steady records)
    FleetSummary summary;
    // Per-slice aggregates over nodes (CS_AB_DEBUG diagnostics).
    std::vector<double> sliceBips;     //!< sum of slot BIPS
    std::vector<double> sliceLcCores;  //!< sum of LC cores
    std::vector<double> sliceLcWays;   //!< sum of LC cache ways
    std::vector<std::size_t> sliceFast; //!< fast-reuse nodes
    std::vector<double> sliceCoreW;    //!< sum of slot core widths
    std::vector<double> slicePower;    //!< sum of executed power
    std::vector<std::size_t> sliceVict; //!< sum of cap victims
};

AbArm
runAbArm(const RealStack &stack, std::size_t n, std::size_t quanta,
         bool fastpath)
{
    telemetry::MemorySink sink;
    FleetOptions opts;
    opts.numNodes = n;
    opts.seed = 42;
    opts.scenario.daySeconds =
        static_cast<double>(quanta) * stack.params.timesliceSec;
    opts.scenario.peakWindowStartSec =
        0.375 * opts.scenario.daySeconds;
    opts.scenario.peakWindowEndSec = 0.75 * opts.scenario.daySeconds;
    // The calm diurnal fleet the incremental path targets: replicas
    // ride a moderate wave with light churn, so steady-state quanta
    // dominate and the stability gate earns its keep. The compressed
    // day makes per-quantum load deltas ~2000x a real day's, so the
    // wave stays inside [0.45, 0.80] — at the default [0.15, 0.95]
    // every quantum near the trough or the peak legitimately trips
    // the drift and tail-guard checks, which measures the scenario's
    // aggression, not the fast path.
    opts.scenario.loadTrough = 0.45;
    opts.scenario.loadPeak = 0.80;
    opts.loadScaleMin = 1.0;
    opts.loadScaleMax = 1.0;
    opts.churn.departureProbability = 0.002;
    opts.churn.meanArrivalsPerQuantum =
        0.01 * static_cast<double>(n);
    // Same compression argument for application phases: the sim's
    // unit-test default cycles a job's memory intensity every 7
    // timeslices, i.e. the job changes identity faster than any
    // scheduler — full or incremental — can track it. Real phases
    // span many decision quanta; 28 timeslices keeps drift live (the
    // refresh cadence still has work to do) without reducing the A/B
    // to a profile-oscillator microbenchmark.
    opts.phaseDriftPeriodSec = 28.0 * stack.params.timesliceSec;
    opts.sink = &sink;
    opts.scheduler.sgdBips.maxIterations = 40;
    opts.scheduler.sgdPower.maxIterations = 40;
    opts.scheduler.sgdLatency.maxIterations = 40;
    opts.scheduler.dds.maxIterations = 25;
    opts.scheduler.dds.threads = 4;
    if (!fastpath) {
        opts.scheduler.fastPath = false;
        opts.memoCache = false;
    }

    BackfillBinPack backfill;
    FleetController fleet(stack.params, stack.tables, stack.lc,
                          stack.split.test, stack.nodeMaxW, backfill,
                          opts);
    AbArm arm;
    double stepUsSum = 0.0;
    std::size_t steps = 0;
    while (!fleet.done()) {
        const Clock::time_point t0 = Clock::now();
        fleet.stepQuantum();
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      t0).count();
        if (fleet.nextQuantum() > kAbWarmQuanta) {
            stepUsSum += us;
            ++steps;
        }
    }
    arm.summary = fleet.summary();
    arm.stepUs = steps > 0 ? stepUsSum / static_cast<double>(steps)
                           : 0.0;

    // Mean per-node decision time over the steady records: the
    // scheduler-side phases only (ingest + reconstruct + search +
    // enforce) — profiling and slice execution are driver cost either
    // way.
    std::size_t records = 0;
    arm.sliceBips.assign(quanta, 0.0);
    arm.sliceLcCores.assign(quanta, 0.0);
    arm.sliceLcWays.assign(quanta, 0.0);
    arm.sliceFast.assign(quanta, 0);
    arm.sliceCoreW.assign(quanta, 0.0);
    arm.slicePower.assign(quanta, 0.0);
    arm.sliceVict.assign(quanta, 0);
    for (const telemetry::QuantumRecord &r : sink.records()) {
        if (r.slice < quanta) {
            for (double b : r.slotBips)
                arm.sliceBips[r.slice] += b;
            arm.sliceLcCores[r.slice] +=
                static_cast<double>(r.lcCores);
            arm.sliceLcWays[r.slice] +=
                JobConfig::fromIndex(r.lcConfigIndex).cacheWays();
            if (r.decisionPath == telemetry::DecisionPath::FastReuse)
                ++arm.sliceFast[r.slice];
            for (double c : r.slotCores)
                arm.sliceCoreW[r.slice] += c;
            arm.slicePower[r.slice] += r.executedPowerW;
            arm.sliceVict[r.slice] += r.capVictims.size();
        }
        if (r.slice < kAbWarmQuanta)
            continue;
        ++records;
        if (r.decisionPath != telemetry::DecisionPath::None &&
            r.decisionPath != telemetry::DecisionPath::FastReuse) {
            ++arm.invalidations[static_cast<std::size_t>(
                r.invalidationReason)];
        }
        for (std::size_t p = 0; p < telemetry::kNumPhases; ++p)
            arm.phaseUs[p] += r.phaseSec[p] * 1e6;
        arm.decisionUs +=
            (r.phase(telemetry::Phase::Ingest) +
             r.phase(telemetry::Phase::Reconstruct) +
             r.phase(telemetry::Phase::Search) +
             r.phase(telemetry::Phase::Enforce)) * 1e6;
    }
    if (records > 0) {
        arm.decisionUs /= static_cast<double>(records);
        for (std::size_t p = 0; p < telemetry::kNumPhases; ++p)
            arm.phaseUs[p] /= static_cast<double>(records);
    }
    return arm;
}

/** One fleet size's A/B outcome. */
struct AbPoint
{
    std::size_t nodes = 0;
    std::size_t quanta = 0;
    AbArm on;  //!< stability gate + memo cache (shipped default)
    AbArm off; //!< --no-fastpath always-full baseline
    double decisionSpeedup = 0.0;
    double qosDeltaPts = 0.0;    //!< on - off, percentage points
    double ginstrRelDelta = 0.0; //!< |on/off - 1|
};

AbPoint
measureIncremental(const RealStack &stack, std::size_t n,
                   std::size_t quanta)
{
    AbPoint pt;
    pt.nodes = n;
    pt.quanta = quanta;
    pt.off = runAbArm(stack, n, quanta, /*fastpath=*/false);
    pt.on = runAbArm(stack, n, quanta, /*fastpath=*/true);
    pt.decisionSpeedup = pt.on.decisionUs > 0.0
        ? pt.off.decisionUs / pt.on.decisionUs
        : 0.0;
    pt.qosDeltaPts =
        pt.on.summary.clusterQosPct - pt.off.summary.clusterQosPct;
    pt.ginstrRelDelta = pt.off.summary.totalBatchInstructions > 0.0
        ? std::fabs(pt.on.summary.totalBatchInstructions /
                        pt.off.summary.totalBatchInstructions -
                    1.0)
        : 0.0;
    if (std::getenv("CS_AB_DEBUG") != nullptr) {
        std::printf("\nCS_AB_DEBUG per-slice (N=%zu): on vs off\n",
                    n);
        std::printf("%6s %10s %10s %7s %8s %8s %8s %8s %4s %4s "
                    "%5s\n",
                    "slice", "bips_on", "bips_off", "d%",
                    "coreW_on", "coreW_off", "pw_on", "pw_off",
                    "v_on", "v_off", "fast");
        for (std::size_t s = 0; s < quanta; ++s) {
            const double d = pt.off.sliceBips[s] > 0.0
                ? 100.0 * (pt.on.sliceBips[s] /
                               pt.off.sliceBips[s] - 1.0)
                : 0.0;
            std::printf(
                "%6zu %10.2f %10.2f %+6.2f %8.2f %8.2f %8.1f "
                "%8.1f %4zu %4zu %5zu\n",
                s, pt.on.sliceBips[s], pt.off.sliceBips[s], d,
                pt.on.sliceCoreW[s], pt.off.sliceCoreW[s],
                pt.on.slicePower[s], pt.off.slicePower[s],
                pt.on.sliceVict[s], pt.off.sliceVict[s],
                pt.on.sliceFast[s]);
        }
    }
    return pt;
}

/**
 * One arm of the data-gravity A/B: the same calm diurnal fleet, but
 * churn also submits DAG workflows whose tasks publish and consume
 * content-addressed artifacts through the per-node caches. The two
 * arms differ only in dag.localityAware — whether placement sees the
 * per-node resident-byte deltas — so any makespan gap is the gravity
 * term's doing.
 */
FleetSummary
runDagArm(const RealStack &stack, std::size_t n, std::size_t quanta,
          bool aware)
{
    // The fleet_sim --dag configuration: churn hot enough that slots
    // free every few quanta (workflow tasks need somewhere to land)
    // and a scarce rack budget so placement quality matters. Only
    // the scheduler iteration caps differ, to keep the A/B benchable
    // at 256 nodes.
    FleetOptions opts;
    opts.numNodes = n;
    opts.seed = 2026;
    opts.scenario.daySeconds =
        static_cast<double>(quanta) * stack.params.timesliceSec;
    opts.scenario.peakWindowStartSec =
        0.375 * opts.scenario.daySeconds;
    opts.scenario.peakWindowEndSec = 0.75 * opts.scenario.daySeconds;
    opts.rackBudgetFrac = 0.55;
    opts.churn.departureProbability = 0.06;
    opts.churn.meanArrivalsPerQuantum =
        0.5 * static_cast<double>(n);
    opts.scheduler.sgdBips.maxIterations = 40;
    opts.scheduler.sgdPower.maxIterations = 40;
    opts.scheduler.sgdLatency.maxIterations = 40;
    opts.scheduler.dds.maxIterations = 25;
    opts.scheduler.dds.threads = 4;
    opts.dag.enable = true;
    opts.dag.maxLiveWorkflows = 2 * n;
    opts.dag.localityAware = aware;
    opts.churn.meanWorkflowArrivalsPerQuantum =
        0.05 * static_cast<double>(n);

    BackfillBinPack backfill;
    FleetController fleet(stack.params, stack.tables, stack.lc,
                          stack.split.test, stack.nodeMaxW, backfill,
                          opts);
    fleet.run();
    return fleet.summary();
}

/** One fleet size's data-gravity A/B outcome. */
struct DagPoint
{
    std::size_t nodes = 0;
    std::size_t quanta = 0;
    FleetSummary aware;
    FleetSummary blind;
    double makespanRelDelta = 0.0; //!< aware/blind - 1 (neg = win)
    double qosDeltaPts = 0.0;      //!< aware - blind, pct points
    double ginstrRelDelta = 0.0;   //!< aware/blind - 1, signed
};

DagPoint
measureDag(const RealStack &stack, std::size_t n, std::size_t quanta)
{
    DagPoint pt;
    pt.nodes = n;
    pt.quanta = quanta;
    pt.blind = runDagArm(stack, n, quanta, /*aware=*/false);
    pt.aware = runDagArm(stack, n, quanta, /*aware=*/true);
    pt.makespanRelDelta = pt.blind.gmeanMakespanQuanta > 0.0
        ? pt.aware.gmeanMakespanQuanta /
                pt.blind.gmeanMakespanQuanta - 1.0
        : 0.0;
    pt.qosDeltaPts =
        pt.aware.clusterQosPct - pt.blind.clusterQosPct;
    pt.ginstrRelDelta = pt.blind.totalBatchInstructions > 0.0
        ? pt.aware.totalBatchInstructions /
                pt.blind.totalBatchInstructions -
            1.0
        : 0.0;
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    std::printf("==============================================="
                "=========================\n");
    std::printf("bench_fleet — controller overhead vs fleet size\n");
    std::printf("serial = pre-rework sequential phases; parallel = "
                "shipped scan/commit\n");
    std::printf("-----------------------------------------------"
                "-------------------------\n");

    const std::vector<AppProfile> jobPool = syntheticPool();
    const BackfillBinPack policy;
    const std::vector<std::size_t> sizes = {16, 64, 256, 1024};
    const std::size_t quanta = smoke ? 12 : 24;
    const std::size_t reps = smoke ? 2 : 3;

    std::vector<CurvePoint> curve;
    for (const std::size_t n : sizes)
        curve.push_back(measure(n, quanta, reps, policy, jobPool));

    const std::vector<std::size_t> widths = {1, 4, 8};
    const bool deterministic =
        deterministicAcrossWidths(256, 8, policy, jobPool, widths);
    const std::uint64_t allocs =
        steadyStateAllocs(256, policy, jobPool);

    // The real-fleet incremental-decisions A/B. Smoke keeps CI fast
    // with the 16-node day; the full run sweeps the ISSUE curve.
    const RealStack stack;
    std::vector<AbPoint> ab;
    if (smoke) {
        ab.push_back(measureIncremental(stack, 16, 40));
    } else {
        ab.push_back(measureIncremental(stack, 16, 40));
        ab.push_back(measureIncremental(stack, 64, 40));
        ab.push_back(measureIncremental(stack, 256, 24));
        ab.push_back(measureIncremental(stack, 1024, 12));
    }
    const AbPoint &gatePt = ab.front();

    // The DAG data-gravity A/B: locality-aware vs blind placement on
    // the same diurnal fleet with churned workflow arrivals.
    std::vector<DagPoint> dagPts;
    if (smoke) {
        dagPts.push_back(measureDag(stack, 16, 40));
    } else {
        dagPts.push_back(measureDag(stack, 16, 40));
        dagPts.push_back(measureDag(stack, 64, 40));
        dagPts.push_back(measureDag(stack, 256, 24));
    }
    const DagPoint &dagGate = dagPts.front();

    std::printf("%8s %14s %14s %9s\n", "nodes", "serial us/q",
                "parallel us/q", "speedup");
    double speedupAt256 = 0.0;
    for (const CurvePoint &pt : curve) {
        std::printf("%8zu %14.1f %14.1f %8.2fx\n", pt.nodes,
                    pt.serial.total(), pt.parallel.total(),
                    pt.speedup);
        if (pt.nodes == 256)
            speedupAt256 = pt.speedup;
    }

    std::printf("\nphase breakdown at N=256 (us/quantum):\n");
    std::printf("%8s", "");
    for (const char *name : kPhaseNames)
        std::printf(" %9s", name);
    std::printf("\n");
    for (const CurvePoint &pt : curve) {
        if (pt.nodes != 256)
            continue;
        std::printf("%8s", "serial");
        for (std::size_t p = 0; p < kNumPhases; ++p)
            std::printf(" %9.1f", pt.serial.us[p]);
        std::printf("\n%8s", "parallel");
        for (std::size_t p = 0; p < kNumPhases; ++p)
            std::printf(" %9.1f", pt.parallel.us[p]);
        std::printf("\n");
    }
    std::printf("\ndeterministic across pool widths 1/4/8: %s\n",
                deterministic ? "yes" : "NO");
    std::printf("steady-state allocations/quantum (N=256): %llu\n",
                static_cast<unsigned long long>(allocs));

    std::printf("\n-----------------------------------------------"
                "-------------------------\n");
    std::printf("incremental decisions — real fleet, diurnal day, "
                "gate+memo vs always-full\n");
    std::printf("%7s %6s %12s %12s %8s %6s %6s %9s %9s\n", "nodes",
                "quanta", "full us/dec", "fast us/dec", "speedup",
                "hit%", "memo", "dQoS(pt)", "dGinstr%");
    for (const AbPoint &pt : ab) {
        std::printf("%7zu %6zu %12.1f %12.1f %7.2fx %5.1f%% %6zu "
                    "%+9.2f %9.3f\n",
                    pt.nodes, pt.quanta, pt.off.decisionUs,
                    pt.on.decisionUs, pt.decisionSpeedup,
                    100.0 * pt.on.summary.fastPathHitRate,
                    pt.on.summary.memoHits, pt.qosDeltaPts,
                    100.0 * pt.ginstrRelDelta);
    }
    std::printf("\nnode-step wall (us/cluster-quantum) and per-node "
                "decision phases at N=%zu:\n", gatePt.nodes);
    std::printf("%9s %10s", "", "step-wall");
    for (std::size_t p = 0; p < telemetry::kNumPhases; ++p) {
        std::printf(" %11s",
                    telemetry::phaseName(
                        static_cast<telemetry::Phase>(p)));
    }
    std::printf("\n%9s %10.1f", "always", gatePt.off.stepUs);
    for (std::size_t p = 0; p < telemetry::kNumPhases; ++p)
        std::printf(" %11.1f", gatePt.off.phaseUs[p]);
    std::printf("\n%9s %10.1f", "gate+memo", gatePt.on.stepUs);
    for (std::size_t p = 0; p < telemetry::kNumPhases; ++p)
        std::printf(" %11.1f", gatePt.on.phaseUs[p]);
    std::printf("\ninvalidations:");
    for (std::size_t i = 0; i < telemetry::kNumInvalidationReasons;
         ++i) {
        if (gatePt.on.invalidations[i] > 0) {
            std::printf(
                " %s=%zu",
                telemetry::invalidationReasonName(
                    static_cast<telemetry::InvalidationReason>(i)),
                gatePt.on.invalidations[i]);
        }
    }
    std::printf("\ndecision split: full %zu (memo-seeded %zu), "
                "fast-reuse %zu of %zu node-quanta\n",
                gatePt.on.summary.fullQuanta,
                gatePt.on.summary.memoSeededQuanta,
                gatePt.on.summary.fastPathHits,
                gatePt.on.summary.fullQuanta +
                    gatePt.on.summary.fastPathHits);

    std::printf("\n-----------------------------------------------"
                "-------------------------\n");
    std::printf("dag workflows — data gravity: locality-aware vs "
                "locality-blind placement\n");
    std::printf("%7s %6s %5s %10s %10s %8s %6s %9s %9s %9s\n",
                "nodes", "quanta", "wfs", "gmean(aw)", "gmean(bl)",
                "dMk%", "hit%", "xfer(MB)", "dQoS(pt)", "dGinstr%");
    for (const DagPoint &pt : dagPts) {
        std::printf("%7zu %6zu %5zu %10.2f %10.2f %+7.2f %5.1f%% "
                    "%9.2f %+9.2f %+9.3f\n",
                    pt.nodes, pt.quanta,
                    pt.aware.workflowsCompleted,
                    pt.aware.gmeanMakespanQuanta,
                    pt.blind.gmeanMakespanQuanta,
                    100.0 * pt.makespanRelDelta,
                    100.0 * pt.aware.artifactHitRate,
                    pt.aware.transferBytes / (1024.0 * 1024.0),
                    pt.qosDeltaPts, 100.0 * pt.ginstrRelDelta);
    }

    if (FILE *f = std::fopen("BENCH_fleet.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"slots_per_node\": %zu,\n"
                     "  \"quanta\": %zu,\n"
                     "  \"placement_policy\": \"%s\",\n"
                     "  \"curve\": [\n",
                     kSlots, quanta, policy.name());
        for (std::size_t i = 0; i < curve.size(); ++i) {
            const CurvePoint &pt = curve[i];
            std::fprintf(f,
                         "    {\"nodes\": %zu, "
                         "\"serial_us_per_quantum\": %.2f, "
                         "\"parallel_us_per_quantum\": %.2f, "
                         "\"speedup\": %.3f}%s\n",
                         pt.nodes, pt.serial.total(),
                         pt.parallel.total(), pt.speedup,
                         i + 1 < curve.size() ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n"
                     "  \"incremental\": [\n");
        for (std::size_t i = 0; i < ab.size(); ++i) {
            const AbPoint &pt = ab[i];
            std::fprintf(
                f,
                "    {\"nodes\": %zu, \"quanta\": %zu, "
                "\"full_us_per_decision\": %.2f, "
                "\"fast_us_per_decision\": %.2f, "
                "\"decision_speedup\": %.3f, "
                "\"fast_path_hit_rate\": %.4f, "
                "\"memo_hits\": %zu, \"memo_stores\": %zu, "
                "\"memo_seeded_quanta\": %zu, "
                "\"step_wall_us_on\": %.1f, "
                "\"step_wall_us_off\": %.1f, "
                "\"qos_pct_on\": %.3f, \"qos_pct_off\": %.3f, "
                "\"ginstr_on\": %.1f, \"ginstr_off\": %.1f, "
                "\"ginstr_rel_delta\": %.5f}%s\n",
                pt.nodes, pt.quanta, pt.off.decisionUs,
                pt.on.decisionUs, pt.decisionSpeedup,
                pt.on.summary.fastPathHitRate, pt.on.summary.memoHits,
                pt.on.summary.memoStores,
                pt.on.summary.memoSeededQuanta, pt.on.stepUs,
                pt.off.stepUs, pt.on.summary.clusterQosPct,
                pt.off.summary.clusterQosPct,
                pt.on.summary.totalBatchInstructions,
                pt.off.summary.totalBatchInstructions,
                pt.ginstrRelDelta, i + 1 < ab.size() ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n"
                     "  \"dag\": [\n");
        for (std::size_t i = 0; i < dagPts.size(); ++i) {
            const DagPoint &pt = dagPts[i];
            std::fprintf(
                f,
                "    {\"nodes\": %zu, \"quanta\": %zu, "
                "\"workflows_completed_aware\": %zu, "
                "\"workflows_completed_blind\": %zu, "
                "\"gmean_makespan_aware\": %.4f, "
                "\"gmean_makespan_blind\": %.4f, "
                "\"makespan_rel_delta\": %.5f, "
                "\"artifact_hit_rate_aware\": %.4f, "
                "\"artifact_hit_rate_blind\": %.4f, "
                "\"transfer_bytes_aware\": %.0f, "
                "\"transfer_bytes_blind\": %.0f, "
                "\"qos_delta_pts\": %.3f, "
                "\"ginstr_aware\": %.1f, \"ginstr_blind\": %.1f, "
                "\"ginstr_rel_delta\": %.5f}%s\n",
                pt.nodes, pt.quanta, pt.aware.workflowsCompleted,
                pt.blind.workflowsCompleted,
                pt.aware.gmeanMakespanQuanta,
                pt.blind.gmeanMakespanQuanta, pt.makespanRelDelta,
                pt.aware.artifactHitRate, pt.blind.artifactHitRate,
                pt.aware.transferBytes, pt.blind.transferBytes,
                pt.qosDeltaPts, pt.aware.totalBatchInstructions,
                pt.blind.totalBatchInstructions, pt.ginstrRelDelta,
                i + 1 < dagPts.size() ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n"
                     "  \"speedup_at_256\": %.3f,\n"
                     "  \"decision_speedup\": %.3f,\n"
                     "  \"fast_path_hit_rate\": %.4f,\n"
                     "  \"deterministic_widths\": [1, 4, 8],\n"
                     "  \"deterministic\": %s,\n"
                     "  \"steady_state_allocs_per_quantum\": %llu\n"
                     "}\n",
                     speedupAt256, gatePt.decisionSpeedup,
                     gatePt.on.summary.fastPathHitRate,
                     deterministic ? "true" : "false",
                     static_cast<unsigned long long>(allocs));
        std::fclose(f);
        std::printf("wrote BENCH_fleet.json\n");
    }

    if (smoke) {
        bool ok = true;
        if (speedupAt256 < 3.0) {
            std::printf("SMOKE FAIL: N=256 controller speedup %.2fx "
                        "< 3.0x\n", speedupAt256);
            ok = false;
        }
        if (!deterministic) {
            std::printf("SMOKE FAIL: parallel controller diverges "
                        "across pool widths\n");
            ok = false;
        }
        if (allocs != 0) {
            std::printf("SMOKE FAIL: %llu steady-state allocations "
                        "per quantum (expected 0)\n",
                        static_cast<unsigned long long>(allocs));
            ok = false;
        }
        if (gatePt.decisionSpeedup < 2.5) {
            std::printf("SMOKE FAIL: incremental decision speedup "
                        "%.2fx < 2.5x (N=%zu)\n",
                        gatePt.decisionSpeedup, gatePt.nodes);
            ok = false;
        }
        if (gatePt.on.summary.fastPathHitRate < 0.5) {
            std::printf("SMOKE FAIL: fast-path hit rate %.1f%% < "
                        "50%% on the diurnal day\n",
                        100.0 * gatePt.on.summary.fastPathHitRate);
            ok = false;
        }
        if (std::fabs(gatePt.qosDeltaPts) > 1.0) {
            std::printf("SMOKE FAIL: QoS delta %+.2f points vs "
                        "always-full (|tol| 1.0)\n",
                        gatePt.qosDeltaPts);
            ok = false;
        }
        if (gatePt.ginstrRelDelta > 0.01) {
            std::printf("SMOKE FAIL: batch Ginstr drifts %.2f%% vs "
                        "always-full (tol 1%%)\n",
                        100.0 * gatePt.ginstrRelDelta);
            ok = false;
        }
        if (dagGate.aware.workflowsCompleted == 0) {
            std::printf("SMOKE FAIL: dag A/B completed no "
                        "workflows\n");
            ok = false;
        }
        if (dagGate.makespanRelDelta >= 0.0) {
            std::printf("SMOKE FAIL: locality-aware gmean makespan "
                        "%.2f not below blind %.2f (dag win "
                        "missing)\n",
                        dagGate.aware.gmeanMakespanQuanta,
                        dagGate.blind.gmeanMakespanQuanta);
            ok = false;
        }
        if (std::fabs(dagGate.qosDeltaPts) > 1.0) {
            std::printf("SMOKE FAIL: dag QoS delta %+.2f points vs "
                        "blind (|tol| 1.0)\n", dagGate.qosDeltaPts);
            ok = false;
        }
        // Asymmetric tolerance: the gravity term finishing MORE
        // batch work than blind placement is the win mechanism
        // (fewer slot-quanta burned on transfers); the regression
        // the gate guards against is locality bias starving batch
        // throughput.
        if (dagGate.ginstrRelDelta < -0.01) {
            std::printf("SMOKE FAIL: dag batch Ginstr %.2f%% below "
                        "blind placement (tol -1%%)\n",
                        100.0 * dagGate.ginstrRelDelta);
            ok = false;
        }
        if (ok)
            std::printf("SMOKE PASS\n");
        return ok ? 0 : 1;
    }
    return 0;
}
