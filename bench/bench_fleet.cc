/**
 * @file
 * Fleet-controller phase timing: controller overhead vs fleet size.
 *
 * Times the per-quantum control phases — churn, view gather,
 * placement, power split, load shift — over a synthetic fleet (no
 * per-node simulators, so the rows isolate pure controller overhead)
 * at N = 16/64/256/1024 nodes. Two controllers drive identical state
 * machines:
 *
 *  - "serial" reproduces the pre-rework controller: a sequential
 *    churn RNG drawn node-major, O(slots) vacancy scans in the view
 *    gather, a full O(N) policy rescan per placed job, and
 *    single-threaded power/shift loops.
 *  - "parallel" is the shipped path, built from the production
 *    components: counter-based JobChurnEngine draws staged
 *    block-parallel in per-worker arenas, O(1) vacancy counters,
 *    PlacementRound's score-once-commit-through-a-heap placement,
 *    ClusterPowerManager's block-parallel split, and the parallel
 *    load scan.
 *
 * A determinism section replays the parallel controller at pool
 * widths 1/4/8 and folds every quantum's full state (occupancy
 * bytes, budget and load bits, counters) into a digest that must
 * match bitwise across widths (DESIGN.md §12). A steady-state
 * allocation row counts heap traffic per parallel quantum via the
 * cs_alloc_probe operator-new replacement (must be 0).
 *
 * --smoke: exit nonzero unless the N=256 combined controller-phase
 * speedup is >= 3x, the width digests agree, and the steady state is
 * allocation-free. Emits BENCH_fleet.json next to stdout.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "apps/app_profile.hh"
#include "cluster/churn.hh"
#include "cluster/node.hh"
#include "cluster/placement.hh"
#include "cluster/power_manager.hh"
#include "common/alloc_probe.hh"
#include "common/arena.hh"
#include "common/thread_pool.hh"

using namespace cuttlesys;
using namespace cuttlesys::cluster;

namespace {

using Clock = std::chrono::steady_clock;

// A high-churn rack: two arrivals per node per quantum against a
// matching departure rate, holding occupancy near 52% — placement
// pressure scales with N, which is exactly the load the rework
// targets.
constexpr std::size_t kSlots = 16;          //!< batch slots per node
constexpr double kDepartureProb = 0.24;     //!< per occupied slot
constexpr double kArrivalsPerNode = 2.0;    //!< mean per quantum
constexpr double kBudgetPerNodeW = 95.0;
constexpr double kNodeFloorW = 30.0;
constexpr double kNodeCapW = 130.0;
constexpr std::size_t kChunk = 32;          //!< nodes per block
constexpr double kTwoPi = 6.283185307179586;

/** SplitMix64 finisher, used for the synthetic state and digests. */
std::uint64_t
mixBits(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** The sequential RNG the pre-rework churn phase consumed. */
struct SeqRng
{
    std::uint64_t state;

    std::uint64_t
    next()
    {
        state += 0x9e3779b97f4a7c15ULL;
        return mixBits(state);
    }

    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }
};

/** Small pool of short-named profiles churn arrivals draw from. */
std::vector<AppProfile>
syntheticPool()
{
    std::vector<AppProfile> pool(8);
    for (std::size_t i = 0; i < pool.size(); ++i) {
        pool[i].name = "batch-";
        pool[i].name += static_cast<char>('a' + i);
        pool[i].seed = 101 + i;
        pool[i].apki = 2.0 + static_cast<double>(i);
    }
    return pool;
}

/** Replica i's offered LC load at @p quantum (phase-staggered day). */
double
offeredLoad(std::uint64_t quantum, std::size_t i, std::size_t n)
{
    const double phase = static_cast<double>(quantum) / 96.0 +
        static_cast<double>(i) / static_cast<double>(n);
    return 0.5 + 0.45 * std::sin(kTwoPi * phase);
}

/**
 * The controller-visible cluster state both implementations drive:
 * planned occupancy, per-quantum views, the budget feedback loop, and
 * the FIFO arrival queue. The parallel path additionally maintains
 * the O(1) vacancy counters and first-vacant hints the reworked
 * ClusterNode keeps; the serial path ignores them and re-scans, as
 * the pre-rework controller did.
 */
struct SyntheticFleet
{
    std::size_t n = 0;
    std::size_t maxPending = 0;
    std::vector<std::uint8_t> occupied;    //!< n x kSlots
    std::vector<std::size_t> freeCount;    //!< per node (O(1) gather)
    std::vector<std::size_t> firstVacant;  //!< per node hint
    std::vector<NodeView> views;
    std::vector<double> budgets;           //!< fed back into views
    std::vector<double> loads;
    std::vector<PendingJob> pending;
    std::size_t pendingHead = 0;
    std::uint64_t quantum = 0;
    std::size_t arrivals = 0;
    std::size_t departures = 0;
    std::size_t placements = 0;
    std::size_t dropped = 0;

    std::size_t queued() const { return pending.size() - pendingHead; }
};

SyntheticFleet
makeFleet(std::size_t n, std::uint64_t seed)
{
    SyntheticFleet st;
    st.n = n;
    st.maxPending = 2 * n;
    st.occupied.assign(n * kSlots, 0);
    st.freeCount.assign(n, kSlots);
    st.firstVacant.assign(n, 0);
    st.views.resize(n);
    st.budgets.assign(n, kBudgetPerNodeW);
    st.loads.assign(n, 0.0);
    st.pending.reserve(st.maxPending + n);

    // Start near the churn equilibrium (~52% occupied) so the timed
    // quanta measure steady-state phase work from the first rep.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t s = 0; s < kSlots; ++s) {
            const std::uint64_t h =
                mixBits(seed ^ (i * kSlots + s) * 0x9e3779b97f4a7c15ULL);
            if ((static_cast<double>(h >> 11) * 0x1.0p-53) < 0.52) {
                st.occupied[i * kSlots + s] = 1;
                --st.freeCount[i];
            }
        }
        std::size_t v = 0;
        while (v < kSlots && st.occupied[i * kSlots + v])
            ++v;
        st.firstVacant[i] = v;
    }
    return st;
}

/** Fill node @p i's view for this quantum (shared by both paths). */
void
fillView(SyntheticFleet &st, std::size_t i, std::size_t free_slots)
{
    NodeView &v = st.views[i];
    const double load = offeredLoad(st.quantum, i, st.n);
    v.node = i;
    v.freeSlots = free_slots;
    v.occupiedSlots = kSlots - free_slots;
    v.loadFraction = load;
    v.budgetW = st.budgets[i];
    v.measuredPowerW = 40.0 + 55.0 * load +
        3.0 * static_cast<double>(v.occupiedSlots);
    v.headroomW = v.budgetW - v.measuredPowerW;
    v.qosViolated = load > 0.85;
    v.gmeanBips = 1.0;
    v.stepped = true;
}

/** Serial donor/receiver pairing and commit (shared by both paths). */
void
shiftCommit(SyntheticFleet &st)
{
    std::size_t receiver = PlacementPolicy::kNoNode;
    for (std::size_t i = 0; i < st.n; ++i) {
        if (st.views[i].qosViolated)
            continue;
        if (receiver == PlacementPolicy::kNoNode ||
            st.loads[i] < st.loads[receiver]) {
            receiver = i;
        }
    }
    if (receiver == PlacementPolicy::kNoNode)
        return;
    for (std::size_t i = 0; i < st.n; ++i) {
        if (!st.views[i].qosViolated || i == receiver)
            continue;
        const double moved = st.loads[i] * 0.15;
        st.loads[i] -= moved;
        st.loads[receiver] += moved;
    }
}

/** FIFO-queue compaction at end of quantum (shared by both paths). */
void
compactPending(SyntheticFleet &st)
{
    if (st.pendingHead == st.pending.size()) {
        st.pending.clear();
        st.pendingHead = 0;
    } else if (st.pendingHead >= 32 &&
               st.pendingHead * 2 >= st.pending.size()) {
        st.pending.erase(st.pending.begin(),
                         st.pending.begin() +
                             static_cast<std::ptrdiff_t>(st.pendingHead));
        st.pendingHead = 0;
    }
}

enum PhaseIdx { kChurn, kGather, kPlace, kPower, kShift, kNumPhases };

const char *const kPhaseNames[kNumPhases] = {
    "churn", "gather", "place", "power", "shift",
};

/** Per-phase accumulated microseconds for one configuration. */
struct PhaseUs
{
    double us[kNumPhases] = {};

    double
    total() const
    {
        double sum = 0.0;
        for (const double v : us)
            sum += v;
        return sum;
    }
};

class PhaseTimer
{
  public:
    PhaseTimer(PhaseUs &acc, PhaseIdx phase)
        : acc_(acc), phase_(phase), start_(Clock::now())
    {
    }

    ~PhaseTimer()
    {
        acc_.us[phase_] +=
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      start_).count();
    }

  private:
    PhaseUs &acc_;
    PhaseIdx phase_;
    Clock::time_point start_;
};

/**
 * The pre-rework controller quantum: every loop single-threaded,
 * every draw from one sequential stream, every vacancy re-scanned.
 */
struct SerialController
{
    const PlacementPolicy &policy;
    const std::vector<AppProfile> &pool;
    SeqRng rng;

    void
    quantum(SyntheticFleet &st, PhaseUs &acc)
    {
        const std::size_t n = st.n;
        {
            PhaseTimer t(acc, kChurn);
            // Departures: one Bernoulli per occupied slot, node-major
            // off the shared stream.
            for (std::size_t i = 0; i < n; ++i) {
                for (std::size_t s = 0; s < kSlots; ++s) {
                    std::uint8_t &occ = st.occupied[i * kSlots + s];
                    if (occ && rng.uniform() < kDepartureProb) {
                        occ = 0;
                        ++st.departures;
                    }
                }
            }
            // Arrivals: one cluster-wide count, then pool draws.
            const double mean =
                kArrivalsPerNode * static_cast<double>(n);
            const double whole = std::floor(mean);
            std::size_t count = static_cast<std::size_t>(whole);
            if (rng.uniform() < mean - whole)
                ++count;
            for (std::size_t k = 0; k < count; ++k) {
                if (st.queued() >= st.maxPending) {
                    ++st.dropped;
                    continue;
                }
                PendingJob job;
                job.profile = pool[rng.next() % pool.size()];
                job.profile.seed ^= rng.next();
                job.submitSlice = st.quantum;
                st.pending.push_back(std::move(job));
                ++st.arrivals;
            }
        }
        {
            PhaseTimer t(acc, kGather);
            // O(slots) vacancy scan per node, serial.
            for (std::size_t i = 0; i < n; ++i) {
                std::size_t free_slots = 0;
                for (std::size_t s = 0; s < kSlots; ++s) {
                    if (!st.occupied[i * kSlots + s])
                        ++free_slots;
                }
                fillView(st, i, free_slots);
            }
        }
        {
            PhaseTimer t(acc, kPlace);
            // Full policy rescan per job, O(slots) slot scan per
            // booking.
            while (st.pendingHead < st.pending.size()) {
                const std::size_t target =
                    policy.place(st.pending[st.pendingHead], st.views);
                if (target == PlacementPolicy::kNoNode)
                    break;
                std::size_t slot = 0;
                while (st.occupied[target * kSlots + slot])
                    ++slot;
                st.occupied[target * kSlots + slot] = 1;
                --st.views[target].freeSlots;
                ++st.views[target].occupiedSlots;
                ++st.placements;
                ++st.pendingHead;
            }
            compactPending(st);
        }
        {
            PhaseTimer t(acc, kPower);
            // The pre-rework ClusterPowerManager::split, verbatim
            // serial: weights, left-fold sum, fill, clip/redistribute.
            double weightSum = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const NodeView &v = st.views[i];
                double demand = v.stepped
                    ? std::max(v.measuredPowerW, kNodeFloorW)
                    : 1.0;
                if (v.qosViolated)
                    demand += 10.0;
                st.loads[i] = demand; // reuse as weight scratch
                weightSum += demand;
            }
            const double distributable =
                (kBudgetPerNodeW - kNodeFloorW) *
                static_cast<double>(n);
            for (std::size_t i = 0; i < n; ++i) {
                const double share = weightSum > 0.0
                    ? distributable * st.loads[i] / weightSum
                    : distributable / static_cast<double>(n);
                st.budgets[i] = kNodeFloorW + share;
            }
            double excess = 0.0;
            std::size_t uncapped = 0;
            for (std::size_t i = 0; i < n; ++i) {
                if (st.budgets[i] > kNodeCapW) {
                    excess += st.budgets[i] - kNodeCapW;
                    st.budgets[i] = kNodeCapW;
                } else {
                    ++uncapped;
                }
            }
            if (excess > 0.0 && uncapped > 0) {
                const double share =
                    excess / static_cast<double>(uncapped);
                for (std::size_t i = 0; i < n; ++i) {
                    if (st.budgets[i] < kNodeCapW) {
                        st.budgets[i] =
                            std::min(st.budgets[i] + share, kNodeCapW);
                    }
                }
            }
        }
        {
            PhaseTimer t(acc, kShift);
            for (std::size_t i = 0; i < n; ++i)
                st.loads[i] = offeredLoad(st.quantum + 1, i, st.n);
            shiftCommit(st);
        }
        ++st.quantum;
    }
};

/**
 * The shipped controller quantum, built from the production
 * components: parallel scans with per-worker arena staging, ordered
 * serial commits (the FleetController phase structure without the
 * per-node simulators).
 */
struct ParallelController
{
    ThreadPool &pool;
    const PlacementPolicy &policy;
    JobChurnEngine churn;
    ClusterPowerManager power;
    PlacementRound round;
    WorkerArenaSet arenas;

    struct NodePlan
    {
        std::uint16_t *departSlots = nullptr;
        std::uint16_t numDeparts = 0;
        std::uint16_t arrivals = 0;
    };
    std::vector<NodePlan> plan;

    ParallelController(ThreadPool &pool_ref,
                       const PlacementPolicy &placement,
                       const std::vector<AppProfile> &job_pool,
                       std::size_t n, std::uint64_t seed)
        : pool(pool_ref), policy(placement),
          churn(job_pool, n, seed,
                ChurnOptions{.departureProbability = kDepartureProb,
                             .meanArrivalsPerQuantum =
                                 kArrivalsPerNode *
                                 static_cast<double>(n),
                             .maxPendingJobs = 2 * n,
                             .tenantArrivalWeights = {}}),
          power(PowerPolicy::HeadroomRebalance,
                PowerManagerOptions{
                    .rackBudgetW =
                        kBudgetPerNodeW * static_cast<double>(n),
                    .nodeFloorW = kNodeFloorW,
                    .nodeCapW = kNodeCapW,
                    .qosBoostW = 10.0}),
          arenas(pool_ref.slotCount())
    {
        plan.resize(n);
        // Worst-case staging prewarm (one worker scanning the whole
        // fleet), as the production FleetController does: the worker
        // schedule varies, so without it an unlucky quantum grows an
        // arena mid-measurement.
        for (std::size_t s = 0; s < arenas.size(); ++s)
            arenas.at(s).alloc<std::uint16_t>(n * kSlots);
        arenas.resetAll();
    }

    void
    quantum(SyntheticFleet &st, PhaseUs &acc)
    {
        const std::size_t n = st.n;
        {
            PhaseTimer t(acc, kChurn);
            // Parallel scan: stage per-node departure lists in the
            // worker's arena; every draw is a pure function of its
            // coordinates.
            arenas.resetAll();
            pool.parallelChunks(
                n, kChunk,
                [this, &st](std::size_t, std::size_t begin,
                            std::size_t end) {
                    ScratchArena &arena =
                        arenas.at(ThreadPool::currentSlot());
                    for (std::size_t i = begin; i < end; ++i) {
                        std::uint16_t *stage =
                            arena.alloc<std::uint16_t>(kSlots);
                        std::uint16_t count = 0;
                        for (std::size_t s = 0; s < kSlots; ++s) {
                            if (st.occupied[i * kSlots + s] &&
                                churn.departs(st.quantum, i, s)) {
                                stage[count++] =
                                    static_cast<std::uint16_t>(s);
                            }
                        }
                        plan[i].departSlots = stage;
                        plan[i].numDeparts = count;
                        plan[i].arrivals =
                            static_cast<std::uint16_t>(
                                churn.arrivalsAt(st.quantum, i));
                    }
                });
            // Serial merge in node-index order.
            for (std::size_t i = 0; i < n; ++i) {
                for (std::uint16_t d = 0; d < plan[i].numDeparts;
                     ++d) {
                    const std::size_t s = plan[i].departSlots[d];
                    st.occupied[i * kSlots + s] = 0;
                    ++st.freeCount[i];
                    st.firstVacant[i] =
                        std::min(st.firstVacant[i], s);
                    ++st.departures;
                }
                for (std::uint16_t k = 0; k < plan[i].arrivals;
                     ++k) {
                    if (st.queued() >= st.maxPending) {
                        ++st.dropped;
                        continue;
                    }
                    PendingJob job;
                    job.profile = churn.drawJobAt(st.quantum, i, k);
                    job.submitSlice = st.quantum;
                    st.pending.push_back(std::move(job));
                    ++st.arrivals;
                }
            }
        }
        {
            PhaseTimer t(acc, kGather);
            // O(1) vacancy counters, block-parallel disjoint writes.
            pool.parallelChunks(
                n, kChunk,
                [&st](std::size_t, std::size_t begin,
                      std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i)
                        fillView(st, i, st.freeCount[i]);
                });
        }
        {
            PhaseTimer t(acc, kPlace);
            // Score once in parallel, commit the queue through the
            // heap.
            round.begin(policy, st.views, pool);
            while (st.pendingHead < st.pending.size()) {
                const std::size_t target = round.placeOne();
                if (target == PlacementPolicy::kNoNode)
                    break;
                std::size_t &hint = st.firstVacant[target];
                st.occupied[target * kSlots + hint] = 1;
                --st.freeCount[target];
                while (hint < kSlots &&
                       st.occupied[target * kSlots + hint]) {
                    ++hint;
                }
                ++st.placements;
                ++st.pendingHead;
            }
            compactPending(st);
        }
        {
            PhaseTimer t(acc, kPower);
            power.split(st.views, st.budgets, pool);
        }
        {
            PhaseTimer t(acc, kShift);
            pool.parallelChunks(
                n, kChunk,
                [&st](std::size_t, std::size_t begin,
                      std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                        st.loads[i] =
                            offeredLoad(st.quantum + 1, i, st.n);
                    }
                });
            shiftCommit(st);
        }
        ++st.quantum;
    }
};

/** Fold one quantum's full controller state into a digest. */
std::uint64_t
digestState(const SyntheticFleet &st, std::uint64_t digest)
{
    for (const std::uint8_t occ : st.occupied)
        digest = mixBits(digest ^ occ);
    for (const double v : st.budgets) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        digest = mixBits(digest ^ bits);
    }
    for (const double v : st.loads) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        digest = mixBits(digest ^ bits);
    }
    digest = mixBits(digest ^ st.queued());
    digest = mixBits(digest ^ st.arrivals);
    digest = mixBits(digest ^ st.departures);
    digest = mixBits(digest ^ st.placements);
    digest = mixBits(digest ^ st.dropped);
    return digest;
}

constexpr std::size_t kWarmQuanta = 3;

/** One curve point: best-of-reps per-quantum phase times. */
struct CurvePoint
{
    std::size_t nodes = 0;
    PhaseUs serial;    //!< per-quantum, best rep
    PhaseUs parallel;  //!< per-quantum, best rep
    double speedup = 0.0;
};

CurvePoint
measure(std::size_t n, std::size_t quanta, std::size_t reps,
        const PlacementPolicy &policy,
        const std::vector<AppProfile> &job_pool)
{
    CurvePoint pt;
    pt.nodes = n;
    double bestSerial = 1e18;
    double bestParallel = 1e18;

    for (std::size_t r = 0; r < reps; ++r) {
        SyntheticFleet st = makeFleet(n, 42);
        SerialController ctl{policy, job_pool, SeqRng{977 + r}};
        PhaseUs warm;
        for (std::size_t q = 0; q < kWarmQuanta; ++q)
            ctl.quantum(st, warm);
        PhaseUs acc;
        for (std::size_t q = 0; q < quanta; ++q)
            ctl.quantum(st, acc);
        if (acc.total() < bestSerial) {
            bestSerial = acc.total();
            for (std::size_t p = 0; p < kNumPhases; ++p) {
                pt.serial.us[p] =
                    acc.us[p] / static_cast<double>(quanta);
            }
        }
    }
    for (std::size_t r = 0; r < reps; ++r) {
        SyntheticFleet st = makeFleet(n, 42);
        ParallelController ctl(ThreadPool::global(), policy,
                               job_pool, n, 977 + r);
        PhaseUs warm;
        for (std::size_t q = 0; q < kWarmQuanta; ++q)
            ctl.quantum(st, warm);
        PhaseUs acc;
        for (std::size_t q = 0; q < quanta; ++q)
            ctl.quantum(st, acc);
        if (acc.total() < bestParallel) {
            bestParallel = acc.total();
            for (std::size_t p = 0; p < kNumPhases; ++p) {
                pt.parallel.us[p] =
                    acc.us[p] / static_cast<double>(quanta);
            }
        }
    }
    pt.speedup = pt.serial.total() / pt.parallel.total();
    return pt;
}

/**
 * Replay the parallel controller at several pool widths; the state
 * digest after every quantum must agree bitwise across widths.
 */
bool
deterministicAcrossWidths(std::size_t n, std::size_t quanta,
                          const PlacementPolicy &policy,
                          const std::vector<AppProfile> &job_pool,
                          const std::vector<std::size_t> &widths)
{
    std::uint64_t reference = 0;
    bool haveReference = false;
    for (const std::size_t w : widths) {
        ThreadPool pool(w);
        SyntheticFleet st = makeFleet(n, 42);
        ParallelController ctl(pool, policy, job_pool, n, 977);
        PhaseUs acc;
        std::uint64_t digest = 0;
        for (std::size_t q = 0; q < quanta; ++q) {
            ctl.quantum(st, acc);
            digest = digestState(st, digest);
        }
        if (!haveReference) {
            reference = digest;
            haveReference = true;
        } else if (digest != reference) {
            return false;
        }
    }
    return true;
}

/** Heap allocations per steady-state parallel quantum (must be 0). */
std::uint64_t
steadyStateAllocs(std::size_t n, const PlacementPolicy &policy,
                  const std::vector<AppProfile> &job_pool)
{
    SyntheticFleet st = makeFleet(n, 42);
    ParallelController ctl(ThreadPool::global(), policy, job_pool, n,
                           977);
    PhaseUs acc;
    for (std::size_t q = 0; q < 4; ++q)
        ctl.quantum(st, acc);

    constexpr std::size_t kSteady = 8;
    const std::uint64_t before = AllocProbe::newCount();
    for (std::size_t q = 0; q < kSteady; ++q)
        ctl.quantum(st, acc);
    const std::uint64_t after = AllocProbe::newCount();
    return (after - before) / kSteady;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    std::printf("==============================================="
                "=========================\n");
    std::printf("bench_fleet — controller overhead vs fleet size\n");
    std::printf("serial = pre-rework sequential phases; parallel = "
                "shipped scan/commit\n");
    std::printf("-----------------------------------------------"
                "-------------------------\n");

    const std::vector<AppProfile> jobPool = syntheticPool();
    const BackfillBinPack policy;
    const std::vector<std::size_t> sizes = {16, 64, 256, 1024};
    const std::size_t quanta = smoke ? 12 : 24;
    const std::size_t reps = smoke ? 2 : 3;

    std::vector<CurvePoint> curve;
    for (const std::size_t n : sizes)
        curve.push_back(measure(n, quanta, reps, policy, jobPool));

    const std::vector<std::size_t> widths = {1, 4, 8};
    const bool deterministic =
        deterministicAcrossWidths(256, 8, policy, jobPool, widths);
    const std::uint64_t allocs =
        steadyStateAllocs(256, policy, jobPool);

    std::printf("%8s %14s %14s %9s\n", "nodes", "serial us/q",
                "parallel us/q", "speedup");
    double speedupAt256 = 0.0;
    for (const CurvePoint &pt : curve) {
        std::printf("%8zu %14.1f %14.1f %8.2fx\n", pt.nodes,
                    pt.serial.total(), pt.parallel.total(),
                    pt.speedup);
        if (pt.nodes == 256)
            speedupAt256 = pt.speedup;
    }

    std::printf("\nphase breakdown at N=256 (us/quantum):\n");
    std::printf("%8s", "");
    for (const char *name : kPhaseNames)
        std::printf(" %9s", name);
    std::printf("\n");
    for (const CurvePoint &pt : curve) {
        if (pt.nodes != 256)
            continue;
        std::printf("%8s", "serial");
        for (std::size_t p = 0; p < kNumPhases; ++p)
            std::printf(" %9.1f", pt.serial.us[p]);
        std::printf("\n%8s", "parallel");
        for (std::size_t p = 0; p < kNumPhases; ++p)
            std::printf(" %9.1f", pt.parallel.us[p]);
        std::printf("\n");
    }
    std::printf("\ndeterministic across pool widths 1/4/8: %s\n",
                deterministic ? "yes" : "NO");
    std::printf("steady-state allocations/quantum (N=256): %llu\n",
                static_cast<unsigned long long>(allocs));

    if (FILE *f = std::fopen("BENCH_fleet.json", "w")) {
        std::fprintf(f,
                     "{\n"
                     "  \"slots_per_node\": %zu,\n"
                     "  \"quanta\": %zu,\n"
                     "  \"placement_policy\": \"%s\",\n"
                     "  \"curve\": [\n",
                     kSlots, quanta, policy.name());
        for (std::size_t i = 0; i < curve.size(); ++i) {
            const CurvePoint &pt = curve[i];
            std::fprintf(f,
                         "    {\"nodes\": %zu, "
                         "\"serial_us_per_quantum\": %.2f, "
                         "\"parallel_us_per_quantum\": %.2f, "
                         "\"speedup\": %.3f}%s\n",
                         pt.nodes, pt.serial.total(),
                         pt.parallel.total(), pt.speedup,
                         i + 1 < curve.size() ? "," : "");
        }
        std::fprintf(f,
                     "  ],\n"
                     "  \"speedup_at_256\": %.3f,\n"
                     "  \"deterministic_widths\": [1, 4, 8],\n"
                     "  \"deterministic\": %s,\n"
                     "  \"steady_state_allocs_per_quantum\": %llu\n"
                     "}\n",
                     speedupAt256, deterministic ? "true" : "false",
                     static_cast<unsigned long long>(allocs));
        std::fclose(f);
        std::printf("wrote BENCH_fleet.json\n");
    }

    if (smoke) {
        bool ok = true;
        if (speedupAt256 < 3.0) {
            std::printf("SMOKE FAIL: N=256 controller speedup %.2fx "
                        "< 3.0x\n", speedupAt256);
            ok = false;
        }
        if (!deterministic) {
            std::printf("SMOKE FAIL: parallel controller diverges "
                        "across pool widths\n");
            ok = false;
        }
        if (allocs != 0) {
            std::printf("SMOKE FAIL: %llu steady-state allocations "
                        "per quantum (expected 0)\n",
                        static_cast<unsigned long long>(allocs));
            ok = false;
        }
        if (ok)
            std::printf("SMOKE PASS\n");
        return ok ? 0 : 1;
    }
    return 0;
}
