/**
 * @file
 * Fig 9 + Section VIII-E: Flicker's inference and runtime compared
 * against CuttleSys's.
 *
 * Part 1 (Fig 9): prediction error of the RBF surrogate fitted to 3
 * samples versus SGD reconstruction from 2 samples, for throughput
 * and power across the 27 core configurations. The paper reports RBF
 * outliers reaching ~600% while SGD stays within tens of percent.
 *
 * Part 2 (Section VIII-E): QoS behavior of the two Flicker
 * evaluation methods — manage-all (9 x 10 ms samples) and batch-only
 * (LC pinned wide) — versus CuttleSys on the same colocation. The
 * paper reports violations of over an order of magnitude for method
 * A and ~1.5x for method B.
 */

#include <algorithm>

#include "bench_common.hh"
#include "cf/engine.hh"
#include "common/stats.hh"
#include "flicker/design3mm3.hh"
#include "flicker/flicker.hh"
#include "flicker/rbf.hh"
#include "model/core_model.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

namespace {

std::size_t
oneWayIndex(std::size_t core_index)
{
    return JobConfig(CoreConfig::fromIndex(core_index), 1).index();
}

void
printBox(const char *metric, const std::vector<double> &errors)
{
    const BoxPlot box = boxPlot(errors);
    double worst = 0.0;
    for (double e : errors)
        worst = std::max(worst, std::abs(e));
    std::printf("%-16s q1=%7.1f%% med=%7.1f%% q3=%7.1f%% "
                "p95=%8.1f%%  worst=%8.1f%%\n",
                metric, box.q1, box.median, box.q3, box.p95, worst);
}

} // namespace

int
main()
{
    setInformEnabled(false);
    banner("fig09_rbf_vs_sgd",
           "RBF (3 samples) vs SGD (2 samples) prediction error; "
           "Flicker QoS (Section VIII-E)",
           "RBF outliers up to ~600%; SGD bounded. Flicker QoS "
           "violations: >10x (manage-all), ~1.5x (batch-only)");

    // ---- Part 1: inference accuracy ---------------------------------
    const auto &test_apps = specSplit().test;
    const BatchTruth truth = batchTruthTables(test_apps, params());
    const std::vector<std::size_t> three_samples = {0, 13, 26};

    std::vector<double> rbf_bips_err, rbf_power_err;
    std::vector<double> sgd_bips_err, sgd_power_err;
    for (std::size_t a = 0; a < test_apps.size(); ++a) {
        // RBF from 3 samples over the 27 core configs (1 LLC way).
        std::vector<double> bips27(kNumCoreConfigs),
            power27(kNumCoreConfigs);
        for (std::size_t k = 0; k < kNumCoreConfigs; ++k) {
            bips27[k] = truth.bips(a, oneWayIndex(k));
            power27[k] = truth.power(a, oneWayIndex(k));
        }
        std::vector<double> bips_samples, power_samples;
        for (auto k : three_samples) {
            bips_samples.push_back(bips27[k]);
            power_samples.push_back(power27[k]);
        }
        const auto rbf_bips =
            rbfPredictCurve(three_samples, bips_samples);
        const auto rbf_power =
            rbfPredictCurve(three_samples, power_samples);

        // SGD from 2 samples (the runtime's own configuration pair).
        CfEngine bips_engine(trainingTables().bips, 1, kNumJobConfigs);
        CfEngine power_engine(trainingTables().power, 1,
                              kNumJobConfigs);
        bips_engine.observe(0, oneWayIndex(0), bips27[0]);
        bips_engine.observe(0, oneWayIndex(kNumCoreConfigs - 1),
                            bips27[kNumCoreConfigs - 1]);
        power_engine.observe(0, oneWayIndex(0), power27[0]);
        power_engine.observe(0, oneWayIndex(kNumCoreConfigs - 1),
                             power27[kNumCoreConfigs - 1]);
        const Matrix sgd_bips = bips_engine.predict();
        const Matrix sgd_power = power_engine.predict();

        for (std::size_t k = 0; k < kNumCoreConfigs; ++k) {
            const bool rbf_sampled =
                std::find(three_samples.begin(), three_samples.end(),
                          k) != three_samples.end();
            if (!rbf_sampled) {
                rbf_bips_err.push_back(
                    relativeErrorPct(rbf_bips[k], bips27[k]));
                rbf_power_err.push_back(
                    relativeErrorPct(rbf_power[k], power27[k]));
            }
            if (k != 0 && k != kNumCoreConfigs - 1) {
                sgd_bips_err.push_back(relativeErrorPct(
                    sgd_bips(0, oneWayIndex(k)), bips27[k]));
                sgd_power_err.push_back(relativeErrorPct(
                    sgd_power(0, oneWayIndex(k)), power27[k]));
            }
        }
    }

    printBox("throughput RBF", rbf_bips_err);
    printBox("throughput SGD", sgd_bips_err);
    printBox("power RBF", rbf_power_err);
    printBox("power SGD", sgd_power_err);

    double rbf_worst = 0.0, sgd_worst = 0.0;
    for (double e : rbf_bips_err)
        rbf_worst = std::max(rbf_worst, std::abs(e));
    for (double e : sgd_bips_err)
        sgd_worst = std::max(sgd_worst, std::abs(e));
    std::printf("SGD beats RBF at equal information: %s "
                "(worst-case %.0f%% vs %.0f%%)\n",
                sgd_worst < rbf_worst ? "yes" : "NO", sgd_worst,
                rbf_worst);

    // ---- Part 2: Flicker runtime QoS ---------------------------------
    std::printf("\nSection VIII-E — Flicker on xapian + SPEC mix "
                "(worst p99/QoS after warm-up):\n");
    const WorkloadMix &mix = evaluationMixes()[0];
    const DriverOptions opts = driverOptions(0.7, 0.8, 1.0);

    auto worst_ratio = [&](const RunResult &r) {
        double worst = 0.0;
        for (std::size_t s = 2; s < r.slices.size(); ++s) {
            worst = std::max(worst,
                             r.slices[s].measurement.lcTailLatency /
                                 mix.lc.qosSeconds());
        }
        return worst;
    };

    {
        MulticoreSim sim(params(), mix, 901);
        FlickerOptions fopts;
        fopts.method = FlickerMethod::ManageAll;
        const RunResult r = runFlicker(sim, opts, fopts);
        std::printf("  Flicker manage-all: worst p99/QoS = %.1fx  "
                    "(paper: >10x)\n", worst_ratio(r));
    }
    {
        MulticoreSim sim(params(), mix, 901);
        FlickerOptions fopts;
        fopts.method = FlickerMethod::BatchOnly;
        const RunResult r = runFlicker(sim, opts, fopts);
        std::printf("  Flicker batch-only: worst p99/QoS = %.1fx  "
                    "(paper: ~1.5x)\n", worst_ratio(r));
    }
    {
        MulticoreSim sim(params(), mix, 901);
        auto sched = makeCuttleSys(mix);
        const RunResult r = runColocation(sim, *sched, opts);
        std::printf("  CuttleSys:          worst p99/QoS = %.1fx  "
                    "(paper: QoS met)\n", worst_ratio(r));
    }
    return 0;
}
