/**
 * @file
 * Ablation D4: soft versus hard constraint handling in the search
 * objective. The paper argues for soft penalties "so that points with
 * slightly higher power are not heavily penalized"; the hard variant
 * assigns infeasible points a flat -1e9.
 */

#include "bench_common.hh"
#include "search/dds.hh"

using namespace cuttlesys;
using namespace cuttlesys::bench;

int
main()
{
    setInformEnabled(false);
    banner("abl_penalty", "D4: soft vs hard constraint handling",
           "paper chooses soft penalties (weight 2) so near-feasible "
           "points still guide the search");

    Matrix bips(16, kNumJobConfigs), power(16, kNumJobConfigs);
    for (std::size_t j = 0; j < 16; ++j) {
        const std::size_t src = j % trainingTables().bips.rows();
        for (std::size_t c = 0; c < kNumJobConfigs; ++c) {
            bips(j, c) = trainingTables().bips(src, c);
            power(j, c) = trainingTables().power(src, c);
        }
    }

    std::printf("%8s %14s %14s %16s\n", "budget",
                "soft best", "hard best", "soft feasible?");
    for (double budget : {45.0, 30.0, 22.0, 18.0}) {
        ObjectiveContext soft;
        soft.bips = &bips;
        soft.power = &power;
        soft.powerBudgetW = budget;
        soft.cacheBudgetWays = 28.0;
        ObjectiveContext hard = soft;
        hard.hardConstraints = true;

        double soft_best = 0.0, hard_best = 0.0;
        bool soft_feasible = true;
        constexpr std::size_t kTrials = 5;
        for (std::size_t t = 0; t < kTrials; ++t) {
            DdsOptions options;
            options.seed = 300 + t;
            const SearchResult s = parallelDds(soft, options);
            const SearchResult h = parallelDds(hard, options);
            // Compare by throughput of the feasible projection: the
            // soft search's point is gated to the budget by the
            // runtime, so take its gmean only when feasible.
            soft_best += s.metrics.feasible ? s.metrics.gmeanBips
                                            : 0.0;
            soft_feasible &= s.metrics.feasible;
            hard_best += h.metrics.feasible ? h.metrics.gmeanBips
                                            : 0.0;
        }
        std::printf("%7.0fW %14.4f %14.4f %16s\n", budget,
                    soft_best / kTrials, hard_best / kTrials,
                    soft_feasible ? "always" : "not always");
    }
    std::printf("\n(soft >= hard indicates graded penalties guide "
                "the search better, the paper's rationale)\n");
    return 0;
}
